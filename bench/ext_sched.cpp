/// Extension experiment: power-aware job scheduling (src/sched/). The
/// paper's evaluation pins two static clusters to the machine; this bench
/// opens the system up to an on-line job stream — Poisson arrivals drawing
/// from a Spark/NPB mix, each job asking for a few power-capping units —
/// and sweeps arrival intensity under every (queueing policy x power
/// manager) combination on the same deterministic stream.
///
/// Reports, per (arrival rate, policy, manager): completed jobs, mean
/// wait, mean bounded slowdown, machine utilization, power throttle
/// stalls, and the engine's budget telemetry. Claims under test: EASY
/// backfill beats FCFS on mean bounded slowdown at the congested rate
/// (under the DPS manager), and the manager keeps the requested cap sum
/// within the cluster budget throughout.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/slurm_stateless.hpp"
#include "sched/job.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

constexpr int kUnits = 20;
constexpr Watts kBudgetPerSocket = 110.0;

EngineResult run_stream(PowerManager& manager, sched::SchedPolicy policy,
                        double rate, int jobs, std::uint64_t seed) {
  sched::JobScheduleConfig js;
  js.policy = policy;
  js.seed = seed;
  js.arrival_rate_per_1000s = rate;
  js.job_count = jobs;
  js.workload_mix = {"Kmeans", "GMM", "Bayes", "EP"};
  js.min_units = 2;
  js.max_units = 8;
  js.resolve = [](const std::string& name) { return workload_by_name(name); };

  EngineConfig config;
  config.total_budget = kBudgetPerSocket * kUnits;
  config.max_time = 400000.0;
  config.job_schedule = js;
  return run_jobs(manager, config, kUnits);
}

std::unique_ptr<PowerManager> make_manager(const std::string& name) {
  if (name == "constant") return std::make_unique<ConstantManager>();
  if (name == "slurm") return std::make_unique<SlurmStatelessManager>();
  return std::make_unique<DpsManager>();
}

}  // namespace

int main() {
  using namespace dps;
  const auto params = dps::bench::params_from_env();
  const std::uint64_t seed = params.seed;
  // DPS_REPEATS scales the stream length so quick runs and paper-scale
  // runs share the binary.
  const int jobs = 20 * params.repeats;

  // Jobs average ~5 units for a few hundred seconds, so the 20-unit
  // machine saturates around ~12 jobs / 1000 s: the sweep spans a lightly
  // loaded, a busy, and a congested regime.
  const std::vector<double> rates = {2.0, 8.0, 20.0};
  const std::vector<sched::SchedPolicy> policies = {
      sched::SchedPolicy::kFcfs, sched::SchedPolicy::kEasyBackfill,
      sched::SchedPolicy::kPowerAware};
  const std::vector<std::string> managers = {"constant", "slurm", "dps"};

  std::printf(
      "Extension: job scheduling under a cluster power budget (%d units,\n"
      "%.0f W/unit, %d-job Poisson streams of Kmeans/GMM/Bayes/EP asking\n"
      "for 2-8 units). Every cell replays the identical arrival stream.\n\n",
      kUnits, kBudgetPerSocket, jobs);

  CsvWriter csv(dps::bench::out_dir() + "/ext_sched.csv");
  csv.write_header({"arrival_rate", "policy", "manager", "completed",
                    "mean_wait_s", "max_wait_s", "mean_bounded_slowdown",
                    "utilization", "throttle_stalls", "shrunk", "elapsed_s",
                    "timed_out", "peak_cap_sum", "budget"});

  Table table({"rate", "policy", "manager", "done", "wait [s]", "slowdown",
               "util", "stalls", "elapsed [s]"});

  const Watts budget = kBudgetPerSocket * kUnits;
  double fcfs_slowdown_dps = 0.0, backfill_slowdown_dps = 0.0;
  bool within_budget = true;
  bool all_completed = true;

  for (const double rate : rates) {
    for (const auto policy : policies) {
      for (const auto& name : managers) {
        auto manager = make_manager(name);
        const EngineResult result =
            run_stream(*manager, policy, rate, jobs, seed);
        const auto& s = result.sched;

        if (result.peak_cap_sum > budget + 1e-6) within_budget = false;
        if (result.timed_out || s.completed + s.abandoned < s.submitted) {
          all_completed = false;
        }
        if (rate == rates.back() && name == "dps") {
          if (policy == sched::SchedPolicy::kFcfs) {
            fcfs_slowdown_dps = s.mean_bounded_slowdown;
          }
          if (policy == sched::SchedPolicy::kEasyBackfill) {
            backfill_slowdown_dps = s.mean_bounded_slowdown;
          }
        }

        table.add_row({format_double(rate, 0), sched::to_string(policy), name,
                       std::to_string(s.completed),
                       format_double(s.mean_wait, 0),
                       format_double(s.mean_bounded_slowdown, 2),
                       format_double(s.mean_utilization, 3),
                       std::to_string(s.throttle_stalls),
                       format_double(result.elapsed, 0)});
        csv.write_row({format_double(rate, 1), sched::to_string(policy), name,
                       std::to_string(s.completed),
                       format_double(s.mean_wait, 1),
                       format_double(s.max_wait, 1),
                       format_double(s.mean_bounded_slowdown, 3),
                       format_double(s.mean_utilization, 4),
                       std::to_string(s.throttle_stalls),
                       std::to_string(s.shrunk),
                       format_double(result.elapsed, 0),
                       result.timed_out ? "1" : "0",
                       format_double(result.peak_cap_sum, 1),
                       format_double(budget, 0)});
      }
    }
  }
  table.print();

  const bool backfill_wins = backfill_slowdown_dps < fcfs_slowdown_dps;
  std::printf(
      "\nCongested rate (%.0f / 1000 s) under dps: mean bounded slowdown\n"
      "fcfs %.2f vs backfill %.2f — backfill must win (%s). Budget held\n"
      "throughout: %s. All streams drained before max_time: %s.\n",
      rates.back(), fcfs_slowdown_dps, backfill_slowdown_dps,
      backfill_wins ? "it does" : "IT DOES NOT",
      within_budget ? "yes" : "NO", all_completed ? "yes" : "NO");
  return backfill_wins && within_budget && all_completed ? 0 : 1;
}
