/// Section 6.5 — overhead analysis, as a google-benchmark binary:
///   * pure controller cost: one decide() step of DPS / SLURM / oracle at
///     10 .. 10,000 units (the paper argues the controller scales to tens
///     of thousands of nodes with a sub-millisecond loop);
///   * the Kalman filter and priority-module costs in isolation;
///   * a full decision round over the real TCP loopback control plane with
///     20 clients, counting the 3-bytes-per-request wire traffic;
///   * the observability tax (src/obs/): the same DPS decide step and a
///     full engine run with the sink disabled (arg 0, must match the
///     uninstrumented numbers — compiled-in hooks are null checks) and
///     enabled (arg 1, budgeted at <= 2 % on the engine run).

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/dps_manager.hpp"
#include "managers/oracle.hpp"
#include "managers/slurm_stateless.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/sink.hpp"
#include "signal/kalman.hpp"
#include "signal/peaks.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace dps;

ManagerContext make_ctx(int units) {
  ManagerContext ctx;
  ctx.num_units = units;
  ctx.total_budget = 110.0 * units;
  ctx.tdp = 165.0;
  ctx.min_cap = 40.0;
  ctx.dt = 1.0;
  return ctx;
}

/// Synthetic measured-power feed: a mix of steady, phased, and oscillating
/// units, exercising every priority-module path.
void fill_power(Rng& rng, int step, std::span<const Watts> caps,
                std::span<Watts> power) {
  for (std::size_t u = 0; u < power.size(); ++u) {
    double demand;
    switch (u % 3) {
      case 0:
        demand = 150.0;
        break;
      case 1:
        demand = (step / 40 + static_cast<int>(u)) % 2 == 0 ? 150.0 : 55.0;
        break;
      default:
        demand = (step / 3) % 2 == 0 ? 140.0 : 60.0;
    }
    power[u] = std::min(demand, caps[u]) * (1.0 + rng.normal(0.0, 0.02));
  }
}

template <typename Manager>
void run_decide_benchmark(benchmark::State& state, Manager& manager) {
  const int units = static_cast<int>(state.range(0));
  const auto ctx = make_ctx(units);
  manager.reset(ctx);
  std::vector<Watts> caps(units, ctx.constant_cap());
  std::vector<Watts> power(units, 0.0);
  Rng rng(1);
  int step = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fill_power(rng, step++, caps, power);
    state.ResumeTiming();
    manager.decide(power, caps);
    benchmark::DoNotOptimize(caps.data());
  }
  state.SetItemsProcessed(state.iterations() * units);
}

void BM_DpsDecide(benchmark::State& state) {
  DpsManager manager;
  run_decide_benchmark(state, manager);
}
BENCHMARK(BM_DpsDecide)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SlurmDecide(benchmark::State& state) {
  SlurmStatelessManager manager;
  run_decide_benchmark(state, manager);
}
BENCHMARK(BM_SlurmDecide)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_OracleDecide(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  std::vector<Watts> demands(units, 150.0);
  OracleManager manager([&](std::span<Watts> out) {
    std::copy(demands.begin(), demands.end(), out.begin());
  });
  run_decide_benchmark(state, manager);
}
BENCHMARK(BM_OracleDecide)->Arg(10)->Arg(1000);

/// The observability tax on the pure controller hot path: arg 0 runs DPS
/// decide with the sink disabled (the default state of every deployment),
/// arg 1 with a live sink (counters, spans, event ring). Compare against
/// BM_DpsDecide/100 — arg 0 must be indistinguishable from it.
void BM_DpsDecideObs(benchmark::State& state) {
  DpsManager manager;
  obs::ObsSink sink;
  if (state.range(0) != 0) sink = obs::ObsSink::create();
  manager.set_obs(sink);
  const auto ctx = make_ctx(100);
  manager.reset(ctx);
  std::vector<Watts> caps(100, ctx.constant_cap());
  std::vector<Watts> power(100, 0.0);
  Rng rng(1);
  int step = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fill_power(rng, step++, caps, power);
    state.ResumeTiming();
    manager.decide(power, caps);
    benchmark::DoNotOptimize(caps.data());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DpsDecideObs)->Arg(0)->Arg(1);

/// The observability tax on a whole engine run (every layer instrumented:
/// engine step loop, DPS pipeline, RAPL, nothing faulted). Arg 0 disabled,
/// arg 1 enabled; the acceptance budget is <= 0.5 % for arg 0 vs the
/// pre-obs engine and <= 2 % for arg 1 vs arg 0.
void BM_EngineRunObs(benchmark::State& state) {
  const WorkloadSpec a = square_wave(40.0, 40.0, 150.0, 60.0, 8);
  const WorkloadSpec b = flat(600.0, 120.0);
  // The sink is created once, like a deployment does: the benchmark
  // measures recording cost, not the one-time ring/registry setup.
  obs::ObsSink sink;
  if (state.range(0) != 0) sink = obs::ObsSink::create();
  for (auto _ : state) {
    EngineConfig config;
    config.target_completions = 1;
    config.max_time = 4000.0;
    config.obs = sink;
    DpsManager manager;
    const auto result = run_pair(a, b, manager, config);
    benchmark::DoNotOptimize(result.steps);
  }
}
BENCHMARK(BM_EngineRunObs)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_KalmanUpdate(benchmark::State& state) {
  Kalman1D kf(4.0, 4.0, 100.0, 4.0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kf.update(100.0 + rng.normal(0.0, 2.0)));
  }
}
BENCHMARK(BM_KalmanUpdate);

void BM_ProminentPeaks(benchmark::State& state) {
  // A 20-sample history with a few peaks, the per-unit per-step workload.
  std::vector<double> history(20);
  for (std::size_t i = 0; i < history.size(); ++i) {
    history[i] = i % 4 < 2 ? 150.0 : 60.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_prominent_peaks(history, 20.0));
  }
}
BENCHMARK(BM_ProminentPeaks);

/// Full decision rounds over real loopback TCP with 20 clients — the
/// paper's 10-node dual-socket deployment. Reports wire bytes per round
/// (3 bytes per request per direction per unit).
void BM_TcpControlRound(benchmark::State& state) {
  constexpr int kUnits = 20;
  ControlServer server(0, kUnits);
  std::vector<std::thread> clients;
  std::atomic<bool> stop{false};
  clients.reserve(kUnits);
  for (int u = 0; u < kUnits; ++u) {
    clients.emplace_back([&server] {
      Watts cap = 110.0;
      NodeClient client([&cap] { return cap * 0.98; },
                        [&cap](Watts c) { cap = c; });
      client.connect(server.port());
      client.run();
    });
  }
  server.accept_all();

  DpsManager manager;
  const auto ctx = make_ctx(kUnits);
  // run_rounds resets the manager; run one batch of rounds per iteration.
  for (auto _ : state) {
    server.run_rounds(manager, ctx, 1);
  }
  state.SetBytesProcessed(state.iterations() * kUnits * 2 * 3);
  stop = true;
  server.shutdown();
  for (auto& t : clients) t.join();
}
BENCHMARK(BM_TcpControlRound)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
