/// Extension experiment: realistic job queues. Instead of the paper's
/// fixed pairs, each cluster runs a rotating *mix* of jobs (cluster A: a
/// Spark analytics queue, cluster B: an HPC batch queue), as a cloud
/// scheduler would submit them. Over a fixed horizon, a manager that
/// shifts power well completes more jobs.
///
/// Reports per manager: jobs completed on each cluster within the horizon
/// and the mean latency per job class, normalized to constant allocation.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/slurm_stateless.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

struct MixResult {
  std::size_t jobs_a = 0;
  std::size_t jobs_b = 0;
  // mean latency per rotation index
  std::map<int, double> latency_a, latency_b;
};

MixResult run_mix(PowerManager& manager, Seconds horizon) {
  GroupSpec spark_queue;
  spark_queue.sockets = 10;
  spark_queue.seed = 31;
  spark_queue.rotation = {workload_by_name("Bayes"), workload_by_name("LR"),
                          workload_by_name("RF"), workload_by_name("Sort")};
  GroupSpec hpc_queue;
  hpc_queue.sockets = 10;
  hpc_queue.seed = 32;
  hpc_queue.rotation = {workload_by_name("MG"), workload_by_name("IS"),
                        workload_by_name("FT")};

  Cluster cluster({spark_queue, hpc_queue});
  SimulatedRapl rapl(cluster.total_units());
  EngineConfig config;
  config.total_budget = 110.0 * cluster.total_units();
  config.target_completions = 1000000;  // horizon-bound, not count-bound
  config.max_time = horizon;
  const auto result = SimulationEngine(config).run(cluster, rapl, manager);

  MixResult mix;
  mix.jobs_a = result.completions[0].size();
  mix.jobs_b = result.completions[1].size();
  auto mean_latencies = [](const std::vector<Completion>& completions) {
    std::map<int, std::vector<double>> by_index;
    for (const auto& c : completions) {
      by_index[c.workload_index].push_back(c.latency());
    }
    std::map<int, double> means;
    for (const auto& [index, latencies] : by_index) {
      means[index] = summarize(latencies).mean;
    }
    return means;
  };
  mix.latency_a = mean_latencies(result.completions[0]);
  mix.latency_b = mean_latencies(result.completions[1]);
  return mix;
}

}  // namespace

int main() {
  using namespace dps;
  const Seconds horizon = 6000.0;

  std::printf(
      "Extension: rotating job queues over a %.0f s horizon.\n"
      "Cluster A: Bayes->LR->RF->Sort (Spark mix); cluster B: MG->IS->FT "
      "(HPC batch).\n\n",
      horizon);

  ConstantManager constant;
  SlurmStatelessManager slurm;
  DpsManager dps;

  const MixResult base = run_mix(constant, horizon);
  const MixResult slurm_result = run_mix(slurm, horizon);
  const MixResult dps_result = run_mix(dps, horizon);

  Table table({"manager", "spark jobs", "hpc jobs", "total",
               "throughput gain"});
  const auto total_base = base.jobs_a + base.jobs_b;
  auto add = [&](const char* name, const MixResult& mix) {
    const double gain = static_cast<double>(mix.jobs_a + mix.jobs_b) /
                        static_cast<double>(total_base);
    table.add_row({name, std::to_string(mix.jobs_a),
                   std::to_string(mix.jobs_b),
                   std::to_string(mix.jobs_a + mix.jobs_b),
                   dps::bench::percent(gain)});
  };
  add("constant", base);
  add("slurm", slurm_result);
  add("dps", dps_result);
  table.print();

  CsvWriter csv(dps::bench::out_dir() + "/ext_job_mix.csv");
  csv.write_header({"manager", "cluster", "workload_index", "mean_latency"});
  auto dump = [&](const char* name, const MixResult& mix) {
    for (const auto& [index, latency] : mix.latency_a) {
      csv.write_row({name, "spark", std::to_string(index),
                     format_double(latency, 2)});
    }
    for (const auto& [index, latency] : mix.latency_b) {
      csv.write_row({name, "hpc", std::to_string(index),
                     format_double(latency, 2)});
    }
  };
  dump("constant", base);
  dump("slurm", slurm_result);
  dump("dps", dps_result);

  std::printf(
      "\nExpected: DPS completes at least as many jobs as constant and more\n"
      "than SLURM — the queue's phase changes are exactly where stateless\n"
      "management loses budget to whoever held it last.\n");
  return 0;
}
