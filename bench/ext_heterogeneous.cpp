/// Extension experiment: heterogeneous fleets. Real clouds mix hardware
/// generations; the paper's claim that DPS "can be deployed on any cloud
/// system" implies it must handle units with different TDPs. Here cluster
/// A runs on full-size 165 W sockets and cluster B on small 125 W sockets
/// (its demand model scaled accordingly); the manager is told each unit's
/// TDP (ManagerContext::unit_tdp) so it never parks budget on a socket
/// that cannot draw it.
///
/// Expected: DPS's advantage survives heterogeneity, and a TDP-aware DPS
/// beats one that believes every socket can take 165 W (the unaware
/// variant strands budget on saturated small sockets).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/slurm_stateless.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

/// Scales a workload's demand levels (small sockets draw less at the same
/// activity) without touching durations.
WorkloadSpec scale_power(WorkloadSpec spec, double factor) {
  for (auto& segment : spec.segments) {
    segment.start_power = kIdlePower +
                          (segment.start_power - kIdlePower) * factor;
    segment.end_power = kIdlePower +
                        (segment.end_power - kIdlePower) * factor;
  }
  return spec;
}

struct HeteroResult {
  double hmean_a = 0.0;
  double hmean_b = 0.0;
};

HeteroResult run(PowerManager& manager, bool tdp_aware, int repeats) {
  const auto big = workload_by_name("Kmeans");
  const auto small = scale_power(workload_by_name("GMM"), 0.72);

  Cluster cluster({GroupSpec{big, 10, 91}, GroupSpec{small, 10, 92}});
  SimulatedRapl rapl(cluster.total_units());

  ManagerContext ctx;
  ctx.num_units = cluster.total_units();
  // Budget: 2/3 of the heterogeneous fleet's aggregate TDP.
  ctx.total_budget = (10 * 165.0 + 10 * 125.0) * 2.0 / 3.0;
  ctx.tdp = 165.0;
  ctx.min_cap = rapl.min_cap();
  if (tdp_aware) {
    ctx.unit_tdp.assign(20, 165.0);
    for (int u = 10; u < 20; ++u) ctx.unit_tdp[u] = 125.0;
  }
  manager.reset(ctx);

  std::vector<Watts> caps(20, ctx.constant_cap());
  std::vector<Watts> power(20), measured(20);
  for (int u = 0; u < 20; ++u) rapl.set_cap(u, caps[u]);
  while (cluster.min_completions() < repeats && cluster.now() < 60000.0) {
    std::vector<Watts> effective(20);
    for (int u = 0; u < 20; ++u) effective[u] = rapl.effective_cap(u);
    cluster.step(1.0, effective, power);
    for (int u = 0; u < 20; ++u) rapl.record(u, power[u], 1.0);
    rapl.advance_step();
    for (int u = 0; u < 20; ++u) measured[u] = rapl.read_power(u);
    manager.decide(measured, caps);
    for (int u = 0; u < 20; ++u) rapl.set_cap(u, caps[u]);
  }

  HeteroResult result;
  std::vector<double> lat_a, lat_b;
  for (const auto& c : cluster.completions(0)) lat_a.push_back(c.latency());
  for (const auto& c : cluster.completions(1)) lat_b.push_back(c.latency());
  result.hmean_a = hmean_latency(lat_a);
  result.hmean_b = hmean_latency(lat_b);
  return result;
}

}  // namespace

int main() {
  using namespace dps;
  const int repeats = dps::bench::params_from_env().repeats;

  std::printf(
      "Extension: heterogeneous fleet — 10x165 W sockets (Kmeans) + "
      "10x125 W sockets\n(scaled GMM), budget = 2/3 of aggregate TDP. Pair "
      "hmean gain vs constant.\n\n");

  ConstantManager constant;
  const auto base = run(constant, /*tdp_aware=*/true, repeats);

  CsvWriter csv(dps::bench::out_dir() + "/ext_heterogeneous.csv");
  csv.write_header({"manager", "pair_gain"});
  Table table({"manager", "pair gain"});
  auto report = [&](const char* label, PowerManager& manager,
                    bool tdp_aware) {
    const auto result = run(manager, tdp_aware, repeats);
    const double gain = pair_hmean(base.hmean_a / result.hmean_a,
                                   base.hmean_b / result.hmean_b);
    table.add_row({label, dps::bench::percent(gain)});
    csv.write_row({label, format_double(gain, 4)});
  };

  SlurmStatelessManager slurm;
  report("slurm (tdp-aware)", slurm, true);
  DpsManager dps_unaware;
  report("dps (tdp-unaware)", dps_unaware, false);
  DpsManager dps_aware;
  report("dps (tdp-aware)", dps_aware, true);
  table.print();

  std::printf(
      "\nExpected: DPS leads SLURM under heterogeneity, and knowing the\n"
      "per-unit TDPs beats assuming 165 W everywhere (budget otherwise\n"
      "parks on saturated small sockets).\n");
  return 0;
}
