/// Extension experiment: the Argo-style two-level hierarchy from the
/// paper's Related Work (refs [7-9]) against flat SLURM and DPS. Two
/// enclave layouts are tested on Kmeans + GMM:
///   aligned    — enclave boundaries coincide with the two clusters, so
///                the global proportional re-split does the cross-cluster
///                shifting and locals only polish;
///   misaligned — enclaves of 4 cut across the cluster boundary, forcing
///                the global level to serve mixed demand.
///
/// Expected: hierarchical beats flat SLURM when aligned (the global level
/// is demand-proportional, which stateless MIMD is not) but degrades when
/// misaligned; DPS stays on top in both cases.
///
/// Naming note: HierarchicalManager (src/managers/hierarchical.hpp) is
/// this *manager policy* — the Argo-style heuristic evaluated here as a
/// baseline. It is unrelated to the hierarchical *control plane* of
/// src/ctrl/, which shards the fleet across controller processes and is
/// benchmarked by ext_scale; see docs/architecture.md ("Hierarchical
/// control plane") for the distinction.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/hierarchical.hpp"
#include "managers/slurm_stateless.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

double pair_gain(PowerManager& manager, const WorkloadSpec& a,
                 const WorkloadSpec& b, double base_a, double base_b,
                 int repeats) {
  Cluster cluster({GroupSpec{a, 10, 71}, GroupSpec{b, 10, 72}});
  SimulatedRapl rapl(cluster.total_units());
  EngineConfig config;
  config.total_budget = 110.0 * cluster.total_units();
  config.target_completions = repeats;
  config.max_time = 60000.0;
  const auto result = SimulationEngine(config).run(cluster, rapl, manager);
  std::vector<double> lat_a, lat_b;
  for (const auto& c : result.completions[0]) lat_a.push_back(c.latency());
  for (const auto& c : result.completions[1]) lat_b.push_back(c.latency());
  return pair_hmean(base_a / hmean_latency(lat_a),
                    base_b / hmean_latency(lat_b));
}

double solo_baseline(const WorkloadSpec& spec, std::uint64_t seed,
                     int repeats) {
  Cluster cluster({GroupSpec{spec, 10, seed}});
  SimulatedRapl rapl(10);
  EngineConfig config;
  config.total_budget = 1100.0;
  config.target_completions = repeats;
  config.max_time = 60000.0;
  ConstantManager constant;
  const auto result = SimulationEngine(config).run(cluster, rapl, constant);
  std::vector<double> latencies;
  for (const auto& c : result.completions[0]) {
    latencies.push_back(c.latency());
  }
  return hmean_latency(latencies);
}

}  // namespace

int main() {
  using namespace dps;
  const int repeats = dps::bench::params_from_env().repeats;

  const auto a = workload_by_name("Kmeans");
  const auto b = workload_by_name("GMM");

  // The two solo baselines are independent — one sweep task each.
  const auto bases = sweep_ordered(2, [&](std::size_t i) {
    return i == 0 ? solo_baseline(a, 71, repeats)
                  : solo_baseline(b, 72, repeats);
  });
  const double base_a = bases[0];
  const double base_b = bases[1];

  std::printf(
      "Extension: Argo-style two-level hierarchy vs flat managers\n"
      "(Kmeans + GMM, pair hmean gain vs constant allocation).\n\n");

  // Each task owns a private manager instance (managers are stateful), so
  // the sweep is task-pure and the CSV below is byte-identical at any
  // DPS_JOBS.
  struct Run {
    const char* label;
    std::unique_ptr<PowerManager> (*make)();
  };
  const std::vector<Run> runs = {
      {"slurm (flat)",
       []() -> std::unique_ptr<PowerManager> {
         return std::make_unique<SlurmStatelessManager>();
       }},
      {"hierarchical (aligned, 2x10)",
       []() -> std::unique_ptr<PowerManager> {
         HierarchicalConfig aligned;
         aligned.units_per_enclave = 10;  // enclaves == the two clusters
         return std::make_unique<HierarchicalManager>(aligned);
       }},
      {"hierarchical (misaligned, 5x4)",
       []() -> std::unique_ptr<PowerManager> {
         HierarchicalConfig misaligned;
         misaligned.units_per_enclave = 4;  // 5 enclaves across clusters
         return std::make_unique<HierarchicalManager>(misaligned);
       }},
      {"dps (flat)",
       []() -> std::unique_ptr<PowerManager> {
         return std::make_unique<DpsManager>();
       }},
  };

  const auto gains = sweep_ordered(runs.size(), [&](std::size_t i) {
    const auto manager = runs[i].make();
    return pair_gain(*manager, a, b, base_a, base_b, repeats);
  });

  CsvWriter csv(dps::bench::out_dir() + "/ext_hierarchical.csv");
  csv.write_header({"manager", "pair_gain"});
  Table table({"manager", "pair gain"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    table.add_row({runs[i].label, dps::bench::percent(gains[i])});
    csv.write_row({runs[i].label, format_double(gains[i], 4)});
  }
  table.print();

  std::printf(
      "\nExpected: aligned hierarchy > flat SLURM (its global level is\n"
      "demand-proportional); misalignment costs it; DPS leads both.\n");
  return 0;
}
