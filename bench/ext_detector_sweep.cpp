/// Extension experiment: where is the reaction-speed boundary? Section 3.3
/// argues that when power phases flip faster than the manager can react,
/// active reallocation hurts, and DPS must detect this (the
/// high-frequency flag) and fall back to safe provisioning. This bench
/// sweeps a square-wave workload's period from 4 s to 160 s against a
/// sustained high-power partner and reports, per period:
///   - the fraction of decision steps the square-wave units carried the
///     high-frequency flag,
///   - DPS's and SLURM's pair hmean gain vs constant.
///
/// Expected: the flag engages below roughly the history length (20 s) and
/// disengages for long periods where the derivative detector takes over;
/// SLURM's losses concentrate at short periods; DPS holds the constant
/// lower bound across the whole sweep.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/slurm_stateless.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace dps;

struct SweepPoint {
  double gain_constant_pair = 1.0;
  double gain_slurm = 0.0;
  double gain_dps = 0.0;
  double high_freq_share = 0.0;  // fraction of steps units 0..9 flagged
};

WorkloadSpec wave_of_period(Seconds period) {
  // 40 % duty cycle at 150 W over a 55 W floor; enough cycles to fill an
  // experiment run of a few hundred seconds.
  const Seconds high = period * 0.4;
  const Seconds low = period - high;
  const int cycles = std::max(3, static_cast<int>(600.0 / period));
  auto spec = square_wave(high, low, 150.0, 55.0, cycles);
  spec.name = "square_" + format_double(period, 0);
  return spec;
}

double run_pair_gain(PowerManager& manager, const WorkloadSpec& wave,
                     const WorkloadSpec& partner, double base_a,
                     double base_b, double* high_freq_share = nullptr,
                     DpsManager* dps = nullptr) {
  Cluster cluster({GroupSpec{wave, 10, 51}, GroupSpec{partner, 10, 52}});
  SimulatedRapl rapl(cluster.total_units());
  EngineConfig config;
  config.total_budget = 110.0 * cluster.total_units();
  config.target_completions = 2;
  config.max_time = 30000.0;

  // Manual loop so DPS's high-frequency flags can be sampled.
  ManagerContext ctx;
  ctx.num_units = cluster.total_units();
  ctx.total_budget = config.total_budget;
  ctx.tdp = rapl.tdp();
  ctx.min_cap = rapl.min_cap();
  manager.reset(ctx);
  std::vector<Watts> caps(ctx.num_units, ctx.constant_cap());
  std::vector<Watts> power(ctx.num_units), measured(ctx.num_units);
  for (int u = 0; u < ctx.num_units; ++u) rapl.set_cap(u, caps[u]);

  long flagged = 0, samples = 0;
  std::vector<Watts> effective(ctx.num_units);
  while (cluster.min_completions() < config.target_completions &&
         cluster.now() < config.max_time) {
    for (int u = 0; u < ctx.num_units; ++u) {
      effective[u] = rapl.effective_cap(u);
    }
    cluster.step(1.0, effective, power);
    for (int u = 0; u < ctx.num_units; ++u) rapl.record(u, power[u], 1.0);
    rapl.advance_step();
    for (int u = 0; u < ctx.num_units; ++u) measured[u] = rapl.read_power(u);
    manager.decide(measured, caps);
    for (int u = 0; u < ctx.num_units; ++u) rapl.set_cap(u, caps[u]);
    if (dps) {
      for (int u = 0; u < 10; ++u) {
        flagged += dps->priorities().high_frequency(u) ? 1 : 0;
        ++samples;
      }
    }
  }
  if (high_freq_share && samples > 0) {
    *high_freq_share = static_cast<double>(flagged) /
                       static_cast<double>(samples);
  }

  std::vector<double> lat_a, lat_b;
  for (const auto& c : cluster.completions(0)) lat_a.push_back(c.latency());
  for (const auto& c : cluster.completions(1)) lat_b.push_back(c.latency());
  return pair_hmean(base_a / hmean_latency(lat_a),
                    base_b / hmean_latency(lat_b));
}

}  // namespace

int main() {
  using namespace dps;
  const auto partner = workload_by_name("GMM");

  std::printf(
      "Extension: high-frequency detector sweep — square-wave (40%% duty,\n"
      "150/55 W) vs GMM, period swept 4..160 s. DPS history length is 20.\n\n");

  CsvWriter csv(dps::bench::out_dir() + "/ext_detector_sweep.csv");
  csv.write_header({"period_s", "high_freq_share", "slurm_pair_gain",
                    "dps_pair_gain"});

  Table table({"period [s]", "HF flag share", "slurm gain", "dps gain"});

  // One sweep task per period: its solo baselines and both pair runs are
  // self-contained, so the seven points run concurrently and report in
  // period order.
  const std::vector<Seconds> periods = {4.0, 8.0, 12.0, 20.0,
                                        40.0, 80.0, 160.0};
  const auto points = sweep_ordered(periods.size(), [&](std::size_t i) {
    const auto wave = wave_of_period(periods[i]);

    // Constant baselines for this wave and the partner.
    ConstantManager constant_a;
    Cluster solo_a({GroupSpec{wave, 10, 51}});
    SimulatedRapl rapl_a(10);
    EngineConfig solo_config;
    solo_config.total_budget = 1100.0;
    solo_config.target_completions = 2;
    solo_config.max_time = 30000.0;
    const auto base_run_a =
        SimulationEngine(solo_config).run(solo_a, rapl_a, constant_a);
    std::vector<double> base_lat_a;
    for (const auto& c : base_run_a.completions[0]) {
      base_lat_a.push_back(c.latency());
    }
    const double base_a = hmean_latency(base_lat_a);

    ConstantManager constant_b;
    Cluster solo_b({GroupSpec{partner, 10, 52}});
    SimulatedRapl rapl_b(10);
    const auto base_run_b =
        SimulationEngine(solo_config).run(solo_b, rapl_b, constant_b);
    std::vector<double> base_lat_b;
    for (const auto& c : base_run_b.completions[0]) {
      base_lat_b.push_back(c.latency());
    }
    const double base_b = hmean_latency(base_lat_b);

    SweepPoint point;
    SlurmStatelessManager slurm;
    point.gain_slurm = run_pair_gain(slurm, wave, partner, base_a, base_b);
    DpsManager dps;
    point.gain_dps = run_pair_gain(dps, wave, partner, base_a, base_b,
                                   &point.high_freq_share, &dps);
    return point;
  });

  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& point = points[i];
    table.add_row({format_double(periods[i], 0),
                   format_double(point.high_freq_share, 2),
                   dps::bench::percent(point.gain_slurm),
                   dps::bench::percent(point.gain_dps)});
    csv.write_row({format_double(periods[i], 0),
                   format_double(point.high_freq_share, 4),
                   format_double(point.gain_slurm, 4),
                   format_double(point.gain_dps, 4)});
  }
  table.print();

  std::printf(
      "\nExpected: the high-frequency flag engages for periods within the\n"
      "20-step history and releases for slow waves; DPS holds the constant\n"
      "lower bound everywhere while SLURM suffers most at short periods.\n");
  return 0;
}
