/// Extension experiment: runtime budget changes — the oversubscribed
/// data-center scenario behind the paper's Google citation (ASPLOS '20
/// priority-aware capping). Mid-run, the facility cuts the cluster budget
/// from 110 to 85 W/socket for a while, then restores it. Every manager
/// must honour the new budget within one decision step (no sustained
/// overshoot) and recover performance afterwards.
///
/// Reports, per manager: pair hmean gain (vs the constant allocation under
/// the same schedule), fairness, and the overshoot statistics the engine
/// records.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/feedback.hpp"
#include "managers/slurm_stateless.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

struct Run {
  double hmean_a = 0.0;
  double hmean_b = 0.0;
  Watts overshoot = 0.0;
  int overshoot_steps = 0;
};

Run run_with_schedule(PowerManager& manager, const WorkloadSpec& a,
                      const WorkloadSpec& b, int repeats) {
  Cluster cluster({GroupSpec{a, 10, 21}, GroupSpec{b, 10, 22}});
  SimulatedRapl rapl(cluster.total_units());
  EngineConfig config;
  config.total_budget = 110.0 * cluster.total_units();
  config.target_completions = repeats;
  config.max_time = 100000.0;
  // Emergency window: drop to 85 W/socket for 600 s, then restore.
  config.budget_schedule = {{600.0, 85.0 * cluster.total_units()},
                            {1200.0, 110.0 * cluster.total_units()}};
  const auto result = SimulationEngine(config).run(cluster, rapl, manager);

  Run run;
  std::vector<double> lat_a, lat_b;
  for (const auto& c : result.completions[0]) lat_a.push_back(c.latency());
  for (const auto& c : result.completions[1]) lat_b.push_back(c.latency());
  run.hmean_a = hmean_latency(lat_a);
  run.hmean_b = hmean_latency(lat_b);
  run.overshoot = result.max_budget_overshoot;
  run.overshoot_steps = result.overshoot_steps;
  return run;
}

}  // namespace

int main() {
  using namespace dps;
  const int repeats =
      static_cast<int>(dps::bench::params_from_env().repeats);

  const auto a = workload_by_name("Kmeans");
  const auto b = workload_by_name("GMM");

  std::printf(
      "Extension: facility power emergency — budget 110 W/socket, cut to\n"
      "85 W/socket at t=600 s, restored at t=1200 s (Kmeans + GMM).\n\n");

  ConstantManager constant;
  const Run base = run_with_schedule(constant, a, b, repeats);

  CsvWriter csv(dps::bench::out_dir() + "/ext_power_emergency.csv");
  csv.write_header({"manager", "hmean_a", "hmean_b", "pair_gain",
                    "overshoot_w", "overshoot_steps"});

  Table table({"manager", "Kmeans hmean [s]", "GMM hmean [s]", "pair gain",
               "max overshoot [W]", "overshoot steps"});
  auto report = [&](PowerManager& manager) {
    const Run run = run_with_schedule(manager, a, b, repeats);
    const double gain = pair_hmean(base.hmean_a / run.hmean_a,
                                   base.hmean_b / run.hmean_b);
    table.add_row({std::string(manager.name()),
                   format_double(run.hmean_a, 1), format_double(run.hmean_b, 1),
                   dps::bench::percent(gain),
                   format_double(run.overshoot, 1),
                   std::to_string(run.overshoot_steps)});
    csv.write_row({std::string(manager.name()), format_double(run.hmean_a, 2),
                   format_double(run.hmean_b, 2), format_double(gain, 4),
                   format_double(run.overshoot, 2),
                   std::to_string(run.overshoot_steps)});
  };

  table.add_row({"constant", format_double(base.hmean_a, 1),
                 format_double(base.hmean_b, 1), "+0.0%",
                 format_double(base.overshoot, 1),
                 std::to_string(base.overshoot_steps)});
  SlurmStatelessManager slurm;
  report(slurm);
  FeedbackManager feedback;
  report(feedback);
  DpsManager dps;
  report(dps);
  table.print();

  std::printf(
      "\nAll managers must shed to the emergency budget within one decision\n"
      "step (overshoot steps should be at most the number of budget cuts).\n"
      "DPS's statefulness must survive the emergency: its gain should stay\n"
      "positive and above SLURM's.\n");
  return 0;
}
