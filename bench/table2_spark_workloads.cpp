/// Table 2 — Spark benchmark workload characterization: mean latency under
/// the constant 110 W/socket allocation and the share of time spent above
/// 110 W (measured on the uncapped run). Prints the simulated values next
/// to the paper's published numbers.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "managers/constant.hpp"
#include "sim/engine.hpp"
#include "workloads/spark_suite.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

/// Share of 1 Hz samples above 110 W on an uncapped solo run (active
/// socket only, active portions only).
double measured_fraction_above(const WorkloadSpec& spec, Watts threshold) {
  Cluster cluster({GroupSpec{spec, 10, 17}});
  SimulatedRapl rapl(cluster.total_units());
  EngineConfig config;
  config.total_budget = 165.0 * cluster.total_units();
  config.target_completions = 1;
  config.record_trace = true;
  config.max_time = 4.0 * (spec.nominal_duration() + spec.inter_run_gap);
  ConstantManager constant;
  const auto result = SimulationEngine(config).run(cluster, rapl, constant);
  const auto series = result.trace->true_power_of(0);
  int above = 0, active = 0;
  for (const double p : series) {
    if (p > kIdlePower + 2.0) ++active;
    if (p > threshold) ++above;
  }
  return active > 0 ? static_cast<double>(above) / active : 0.0;
}

}  // namespace

int main() {
  using namespace dps;
  PairRunner runner(dps::bench::params_from_env());

  std::printf(
      "Table 2 reproduction: Spark workloads under constant 110 W caps.\n"
      "(paper columns in parentheses; durations are hmean over %d runs)\n\n",
      runner.params().repeats);

  Table table({"workload", "power type", "duration [s]", "(paper [s])",
               "above 110W", "(paper)"});
  CsvWriter csv(dps::bench::out_dir() + "/table2_spark.csv");
  csv.write_header({"workload", "power_type", "duration_s", "paper_duration_s",
                    "above_110_frac", "paper_above_110_frac"});

  const auto suite = spark_suite();
  struct Row {
    double duration = 0.0;
    double above = 0.0;
  };
  const auto rows = sweep_ordered(suite.size(), [&](std::size_t i) {
    return Row{runner.baseline_hmean(suite[i]),
               measured_fraction_above(suite[i], 110.0)};
  });

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& spec = suite[i];
    const auto paper = spark_paper_stats(spec.name);
    table.add_row({spec.name, to_string(spec.power_type),
                   format_double(rows[i].duration, 1),
                   format_double(paper.duration, 1),
                   format_double(rows[i].above * 100.0, 2) + "%",
                   format_double(paper.above_110_fraction * 100.0, 2) + "%"});
    csv.write_row({spec.name, to_string(spec.power_type),
                   format_double(rows[i].duration, 2),
                   format_double(paper.duration, 2),
                   format_double(rows[i].above, 4),
                   format_double(paper.above_110_fraction, 4)});
  }
  table.print();
  return 0;
}
