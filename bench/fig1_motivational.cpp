/// Figure 1 — the motivational example: a two-node overprovisioned system
/// over five coarse timesteps. Node 0's demand rises two timesteps before
/// Node 1's; the budget covers both nodes at full power only if allocated
/// perfectly. The figure's point: a stateless manager hands Node 0 the
/// whole budget and starves Node 1 when it rises later; a perfect
/// model-based system and DPS converge to the balanced split.
///
/// This bench replays that scenario against the real manager
/// implementations and prints each manager's caps at every timestep.

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "managers/constant.hpp"
#include "managers/oracle.hpp"
#include "managers/slurm_stateless.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

constexpr Watts kMaxPower = 160.0;
constexpr Watts kLowPower = 40.0;
constexpr int kTimesteps = 5;
// Each schematic timestep is several decision-loop seconds so the managers
// can actually react, as they would on hardware.
constexpr int kSecondsPerTimestep = 12;

/// Demand schedule of Figure 1: node 0 ramps up in T2, node 1 in T4.
Watts demand_at(int node, int timestep) {
  const int rise_at = node == 0 ? 1 : 3;
  return timestep >= rise_at ? kMaxPower : kLowPower;
}

struct Row {
  std::string manager;
  std::vector<std::array<Watts, 2>> caps_per_timestep;
};

Row run_scenario(PowerManager& manager, Watts budget,
                 std::vector<Watts>* demand_feed = nullptr) {
  ManagerContext ctx;
  ctx.num_units = 2;
  ctx.total_budget = budget;
  ctx.tdp = 165.0;
  ctx.min_cap = 40.0;
  manager.reset(ctx);

  Row row;
  row.manager = std::string(manager.name());
  std::vector<Watts> caps(2, ctx.constant_cap());
  for (int t = 0; t < kTimesteps; ++t) {
    for (int s = 0; s < kSecondsPerTimestep; ++s) {
      std::vector<Watts> power(2);
      for (int node = 0; node < 2; ++node) {
        power[node] = std::min(demand_at(node, t), caps[node]);
        if (demand_feed) (*demand_feed)[node] = demand_at(node, t);
      }
      manager.decide(power, caps);
    }
    row.caps_per_timestep.push_back({caps[0], caps[1]});
  }
  return row;
}

}  // namespace

int main() {
  using namespace dps;

  // The paper's scenario: the budget covers one node at max power plus one
  // at low power (2200/11-node flavour scaled to 2 nodes: 220 W here would
  // be the constant split; the interesting regime is budget < 2*max).
  const Watts budget = 220.0;

  std::printf(
      "Figure 1 reproduction: caps per timestep on a 2-node system,\n"
      "budget %.0f W, node demands: node0 %g->%g W at T2, node1 at T4.\n\n",
      budget, kLowPower, kMaxPower);

  std::vector<Row> rows;

  ConstantManager constant;
  rows.push_back(run_scenario(constant, budget));

  SlurmStatelessManager slurm;
  rows.push_back(run_scenario(slurm, budget));

  std::vector<Watts> oracle_demands(2, kLowPower);
  OracleManager oracle(
      [&](std::span<Watts> out) {
        std::copy(oracle_demands.begin(), oracle_demands.end(), out.begin());
      },
      0.0);
  rows.push_back(run_scenario(oracle, budget, &oracle_demands));

  DpsManager dps;
  rows.push_back(run_scenario(dps, budget));

  Table table({"manager", "T1 n0/n1", "T2 n0/n1", "T3 n0/n1", "T4 n0/n1",
               "T5 n0/n1"});
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.manager};
    for (const auto& caps : row.caps_per_timestep) {
      cells.push_back(format_double(caps[0], 0) + "/" +
                      format_double(caps[1], 0));
    }
    table.add_row(cells);
  }
  table.print();

  // The shape checks the paper's narrative hangs on.
  const auto& slurm_caps = rows[1].caps_per_timestep.back();
  const auto& dps_caps = rows[3].caps_per_timestep.back();
  const auto& oracle_caps = rows[2].caps_per_timestep.back();
  const double slurm_gap = std::abs(slurm_caps[0] - slurm_caps[1]);
  const double dps_gap = std::abs(dps_caps[0] - dps_caps[1]);
  std::printf(
      "\nAt T5: stateless cap imbalance %.0f W (node 1 starved), "
      "DPS imbalance %.0f W,\noracle imbalance %.0f W. DPS reaches the "
      "balanced allocation a perfect\nmodel-based system would pick, from "
      "power data alone: %s\n",
      slurm_gap, dps_gap, std::abs(oracle_caps[0] - oracle_caps[1]),
      (dps_gap < 15.0 && slurm_gap > 60.0) ? "REPRODUCED" : "NOT reproduced");

  CsvWriter csv(dps::bench::out_dir() + "/fig1_motivational.csv");
  csv.write_header({"manager", "timestep", "cap_node0", "cap_node1"});
  for (const auto& row : rows) {
    for (std::size_t t = 0; t < row.caps_per_timestep.size(); ++t) {
      csv.write_row({row.manager, std::to_string(t + 1),
                     format_double(row.caps_per_timestep[t][0], 1),
                     format_double(row.caps_per_timestep[t][1], 1)});
    }
  }
  return 0;
}
