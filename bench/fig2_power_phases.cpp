/// Figure 2 — power phases of three Spark applications (LDA, Bayes, LR)
/// executed without a power limit. Reproduces the figure's three
/// observations: diverse phase durations (LDA's >100 s opening phase vs
/// LR's <10 s bursts), diverse peak power per phase, and diverse first
/// derivatives. Prints per-workload phase statistics and dumps the full
/// 1 Hz traces to CSV for plotting.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "managers/constant.hpp"
#include "sim/engine.hpp"
#include "signal/phase_stats.hpp"
#include "workloads/spark_suite.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace dps;
  const auto out = dps::bench::out_dir();

  std::printf(
      "Figure 2 reproduction: uncapped power traces of LDA, Bayes, LR.\n"
      "Phases = stretches above 110 W in the 1 Hz trace.\n\n");

  Table table({"workload", "phases/run", "longest [s]", "shortest [s]",
               "max peak [W]", "min peak [W]", "max dP/dt [W/s]"});

  for (const std::string name : {"LDA", "Bayes", "LR"}) {
    auto spec = spark_workload(name);
    Cluster cluster({GroupSpec{spec, 10, 7}});
    SimulatedRapl rapl(cluster.total_units());
    EngineConfig config;
    config.total_budget = 165.0 * cluster.total_units();  // never binds
    config.target_completions = 1;
    config.record_trace = true;
    config.max_time = 4.0 * spec.nominal_duration();
    ConstantManager constant;
    const auto result =
        SimulationEngine(config).run(cluster, rapl, constant);

    const auto series = result.trace->true_power_of(0);
    const auto stats = analyze_phases(series, 110.0);
    table.add_row({name, std::to_string(stats.phase_count),
                   format_double(stats.longest, 0),
                   format_double(stats.shortest, 0),
                   format_double(stats.max_peak, 0),
                   format_double(stats.min_peak, 0),
                   format_double(stats.max_rise_rate, 1)});

    CsvWriter csv(out + "/fig2_" + name + ".csv");
    csv.write_header({"time_s", "power_w"});
    const auto& samples = result.trace->series(0);
    for (const auto& s : samples) {
      csv.write_row({format_double(s.time, 0), format_double(s.true_power, 1)});
    }
  }
  table.print();

  std::printf(
      "\nPaper's observations to check: LDA has a phase >100 s; LR's phases\n"
      "are <10 s; Bayes sits in between with diverse peaks; rise rates vary\n"
      "by an order of magnitude. Traces in %s/fig2_*.csv.\n",
      out.c_str());
  return 0;
}
