/// Figure 7 — fairness (Equations 1-2) of the two high-utility workload
/// groups under DPS and SLURM. Re-runs the Figure 5 pairings (Spark high
/// utility) and the Figure 6 pairings (Spark x NPB) and prints the
/// distribution of per-pair fairness for each manager.
///
/// Paper shapes: DPS ~0.97 / ~0.96 mean fairness; SLURM ~0.75 / ~0.71;
/// DPS's fairness is higher than SLURM's for every workload, and higher
/// fairness correlates with higher pair hmean performance.
///
/// DPS_FULL=1 widens the high-utility set to all 49 pairs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "experiments/registry.hpp"
#include "metrics/metrics.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "workloads/npb_suite.hpp"
#include "workloads/spark_suite.hpp"

namespace {

using namespace dps;

struct GroupResult {
  std::vector<double> slurm_fairness, dps_fairness;
  std::vector<double> slurm_pair, dps_pair;
  int dps_wins = 0;
  int pair_count = 0;
};

GroupResult run_group(
    PairRunner& runner,
    const std::vector<std::pair<std::string, std::string>>& pairs,
    CsvWriter& csv, const char* group_name) {
  GroupResult result;
  // Both managers of one pair form a single sweep task; the ordered sweep
  // hands results back in pair order, so the CSV matches the serial run.
  struct PairOutcomes {
    PairOutcome slurm, dps;
  };
  const auto outcomes = sweep_ordered(pairs.size(), [&](std::size_t i) {
    const auto a = workload_by_name(pairs[i].first);
    const auto b = workload_by_name(pairs[i].second);
    return PairOutcomes{runner.run_pair(a, b, ManagerKind::kSlurm),
                        runner.run_pair(a, b, ManagerKind::kDps)};
  });
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& [a_name, b_name] = pairs[i];
    const auto& slurm = outcomes[i].slurm;
    const auto& dps = outcomes[i].dps;
    result.slurm_fairness.push_back(slurm.fairness);
    result.dps_fairness.push_back(dps.fairness);
    result.slurm_pair.push_back(slurm.pair_hmean);
    result.dps_pair.push_back(dps.pair_hmean);
    if (dps.fairness >= slurm.fairness) ++result.dps_wins;
    ++result.pair_count;
    csv.write_row({group_name, a_name, b_name,
                   format_double(slurm.fairness, 4),
                   format_double(dps.fairness, 4),
                   format_double(slurm.pair_hmean, 4),
                   format_double(dps.pair_hmean, 4)});
  }
  return result;
}

/// Pearson correlation, for the paper's "fairness correlates with hmean
/// performance" observation.
double correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  const double mx = summarize(x).mean, my = summarize(y).mean;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  return sxx > 0 && syy > 0 ? sxy / std::sqrt(sxx * syy) : 0.0;
}

void print_group(const char* title, const GroupResult& result) {
  const auto slurm = summarize(result.slurm_fairness);
  const auto dps = summarize(result.dps_fairness);
  std::printf("%s (%d pairs):\n", title, result.pair_count);
  Table table({"manager", "mean", "median", "min", "max"});
  table.add_row({"slurm", format_double(slurm.mean, 3),
                 format_double(slurm.median, 3), format_double(slurm.min, 3),
                 format_double(slurm.max, 3)});
  table.add_row({"dps", format_double(dps.mean, 3),
                 format_double(dps.median, 3), format_double(dps.min, 3),
                 format_double(dps.max, 3)});
  table.print();
  std::printf("pairs where DPS fairness >= SLURM: %d / %d\n\n",
              result.dps_wins, result.pair_count);
}

}  // namespace

int main() {
  using namespace dps;
  PairRunner runner(dps::bench::params_from_env());
  const bool full = env_int("DPS_FULL", 0) != 0;

  std::printf("Figure 7 reproduction: fairness of the high-utility groups.\n\n");

  CsvWriter csv(dps::bench::out_dir() + "/fig7_fairness.csv");
  csv.write_header({"group", "a", "b", "slurm_fairness", "dps_fairness",
                    "slurm_pair_hmean", "dps_pair_hmean"});

  const auto mids = spark_mid_high_names();
  std::vector<std::pair<std::string, std::string>> high_utility;
  if (full) {
    for (const auto& a : mids) {
      for (const auto& b : mids) high_utility.emplace_back(a, b);
    }
  } else {
    for (const auto& a : mids) high_utility.emplace_back(a, "GMM");
  }
  const auto high = run_group(runner, high_utility, csv, "high_utility");
  print_group("Spark high utility", high);

  std::vector<std::pair<std::string, std::string>> spark_npb;
  for (const auto& a : mids) {
    for (const auto& b : npb_names()) spark_npb.emplace_back(a, b);
  }
  const auto npb = run_group(runner, spark_npb, csv, "spark_npb");
  print_group("Spark & NPB", npb);

  std::vector<double> all_fairness, all_pair;
  for (const auto* group : {&high, &npb}) {
    all_fairness.insert(all_fairness.end(), group->slurm_fairness.begin(),
                        group->slurm_fairness.end());
    all_fairness.insert(all_fairness.end(), group->dps_fairness.begin(),
                        group->dps_fairness.end());
    all_pair.insert(all_pair.end(), group->slurm_pair.begin(),
                    group->slurm_pair.end());
    all_pair.insert(all_pair.end(), group->dps_pair.begin(),
                    group->dps_pair.end());
  }
  std::printf(
      "fairness vs pair-hmean correlation across all runs: %.2f\n"
      "(paper observes a general positive correlation; paper means:\n"
      " high utility 0.97 dps / 0.75 slurm, Spark&NPB 0.96 / 0.71)\n",
      correlation(all_fairness, all_pair));
  return 0;
}
