/// Extension experiment: control-plane scalability. The paper's deployment
/// is one controller over 20 sockets; this bench sweeps the unit count
/// from 10 to 100k and compares a single flat DPS controller against the
/// hierarchical control plane (src/ctrl/): DPS leaves over shards of 32
/// units under DPS budget-redistribution tiers.
///
/// The quantity compared is the per-round *decide* latency — for the tree,
/// the distributed critical path (root tier, recursively, plus the slowest
/// leaf), i.e. the wall time of one round if every tier ran on its own
/// controller node. Expected shape: flat decide cost grows linearly-ish
/// with the unit count while the tree's critical path stays bounded by
/// the fan-out (sub-linear in the cluster size), with satisfaction and
/// fairness degrading only gracefully — the price of the root tier seeing
/// shards, not sockets.
///
/// Units here follow a synthetic two-phase demand model (deterministic per
/// seed), not the workload simulator: at 100k units the cluster sim would
/// dominate the runtime and the subject is the controller, not the fleet.
///
/// Knobs:
///   DPS_SCALE_MAX     largest unit count        [100000; CI smoke: 1000]
///   DPS_SCALE_ROUNDS  decision rounds per size  [60]
///   DPS_SCALE_SHARD   units per leaf shard      [32]
///   DPS_SEED          demand-model base seed    [42]
///   DPS_JOBS          sweep worker threads (timings are measured inside
///                     each task; decisions are identical at any value)
///   DPS_BENCH_JSON    tracked-baseline output   [BENCH_scale.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "ctrl/tree.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double u01(std::uint64_t x) {
  return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

/// Two-phase demand per unit: a high plateau above the fair share and a
/// low one below it, with per-unit period and phase — the overprovisioned
/// mix DPS feeds on (half the fleet idles while the other half wants more
/// than 110 W).
struct DemandModel {
  std::vector<Watts> high, low;
  std::vector<int> period, offset;

  DemandModel(int units, std::uint64_t seed) {
    high.resize(units);
    low.resize(units);
    period.resize(units);
    offset.resize(units);
    for (int u = 0; u < units; ++u) {
      const std::uint64_t k = seed * 1000003ULL + static_cast<std::uint64_t>(u);
      high[u] = 110.0 + 50.0 * u01(k);
      low[u] = 45.0 + 35.0 * u01(k + 1);
      period[u] = 20 + static_cast<int>(40.0 * u01(k + 2));
      offset[u] = static_cast<int>(u01(k + 3) * period[u]);
    }
  }

  Watts demand(int u, int round) const {
    const int phase = (round + offset[u]) % period[u];
    return phase * 2 < period[u] ? high[u] : low[u];
  }
};

struct RunResult {
  double decide_us_per_round = 0.0;  // flat: manager; tree: critical path
  double total_us_per_round = 0.0;   // tree only: all tiers summed
  double satisfaction = 0.0;         // sum min(demand, cap) / sum demand
  double fairness = 0.0;             // 1 - mean pairwise |sat_i - sat_j|
  int levels = 1;
  int shards = 1;
};

/// Mean pairwise absolute difference in O(n log n) via the sorted-prefix
/// identity sum_{i<j}(s_j - s_i) = sum_i s_i * (2i - n + 1).
double mean_pairwise_abs_diff(std::vector<double> values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += values[i] * (2.0 * static_cast<double>(i) -
                        static_cast<double>(n) + 1.0);
  }
  return sum / (0.5 * static_cast<double>(n) * static_cast<double>(n - 1));
}

RunResult run_controller(PowerManager& manager, TreeController* tree,
                         int units, int rounds, std::uint64_t seed) {
  const DemandModel model(units, seed);
  ManagerContext ctx;
  ctx.num_units = units;
  ctx.total_budget = 110.0 * units;
  ctx.tdp = 165.0;
  ctx.min_cap = 40.0;
  manager.reset(ctx);

  std::vector<Watts> caps(static_cast<std::size_t>(units),
                          ctx.constant_cap());
  std::vector<Watts> power(static_cast<std::size_t>(units), 0.0);
  std::vector<double> energy(static_cast<std::size_t>(units), 0.0);
  std::vector<double> demand_energy(static_cast<std::size_t>(units), 0.0);

  std::uint64_t decide_ns = 0, total_ns = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int u = 0; u < units; ++u) {
      const Watts d = model.demand(u, r);
      const Watts p = std::min(d, caps[static_cast<std::size_t>(u)]);
      power[static_cast<std::size_t>(u)] = p;
      energy[static_cast<std::size_t>(u)] += p;
      demand_energy[static_cast<std::size_t>(u)] += d;
    }
    if (tree != nullptr) {
      manager.decide(power, caps);
      decide_ns += tree->last_critical_path_ns();
      total_ns += tree->last_total_ns();
    } else {
      const auto start = std::chrono::steady_clock::now();
      manager.decide(power, caps);
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      decide_ns += static_cast<std::uint64_t>(ns);
      total_ns += static_cast<std::uint64_t>(ns);
    }
  }

  RunResult result;
  result.decide_us_per_round =
      1e-3 * static_cast<double>(decide_ns) / rounds;
  result.total_us_per_round = 1e-3 * static_cast<double>(total_ns) / rounds;
  double capped = 0.0, wanted = 0.0;
  std::vector<double> sats(static_cast<std::size_t>(units));
  for (int u = 0; u < units; ++u) {
    capped += energy[static_cast<std::size_t>(u)];
    wanted += demand_energy[static_cast<std::size_t>(u)];
    sats[static_cast<std::size_t>(u)] =
        demand_energy[static_cast<std::size_t>(u)] > 0.0
            ? energy[static_cast<std::size_t>(u)] /
                  demand_energy[static_cast<std::size_t>(u)]
            : 1.0;
  }
  result.satisfaction = wanted > 0.0 ? capped / wanted : 1.0;
  result.fairness = 1.0 - mean_pairwise_abs_diff(std::move(sats));
  if (tree != nullptr) {
    result.levels = tree->levels();
    result.shards = tree->num_shards();
  }
  return result;
}

struct SizeRow {
  int units = 0;
  RunResult flat, tree;
};

}  // namespace

int main() {
  using namespace dps;
  const int max_units = static_cast<int>(env_int("DPS_SCALE_MAX", 100000));
  const int rounds = static_cast<int>(env_int("DPS_SCALE_ROUNDS", 60));
  const int shard = static_cast<int>(env_int("DPS_SCALE_SHARD", 32));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(env_int("DPS_SEED", 42));
  const std::string json_path =
      env_string("DPS_BENCH_JSON", "BENCH_scale.json");

  std::vector<int> sizes;
  for (int n = 10; n <= max_units; n *= 10) sizes.push_back(n);
  if (sizes.empty()) sizes.push_back(max_units);

  std::printf(
      "Extension: control-plane scale — flat DPS vs src/ctrl/ tree "
      "(shard %d),\n%d rounds of a synthetic two-phase demand fleet, "
      "10..%d units.\n\n",
      shard, rounds, max_units);

  // One task per size; the timings are taken inside the task, the CSV is
  // written serially from the ordered results.
  const auto rows = sweep_ordered(sizes.size(), [&](std::size_t i) {
    SizeRow row;
    row.units = sizes[i];
    {
      DpsManager flat;
      row.flat = run_controller(flat, nullptr, row.units, rounds, seed);
    }
    {
      CtrlConfig ctrl;
      ctrl.shard_size = shard;
      ctrl.max_levels = 3;
      TreeController tree(ctrl);
      row.tree = run_controller(tree, &tree, row.units, rounds, seed);
    }
    return row;
  });

  CsvWriter csv(dps::bench::out_dir() + "/ext_scale.csv");
  csv.write_header({"units", "shards", "levels", "flat_decide_us",
                    "tree_critical_us", "tree_total_us", "flat_sat",
                    "tree_sat", "flat_fair", "tree_fair"});
  Table table({"units", "shards", "levels", "flat decide", "tree critical",
               "sat flat/tree", "fair flat/tree"});
  for (const auto& row : rows) {
    char flat_us[32], tree_us[32], sat[48], fair[48];
    std::snprintf(flat_us, sizeof(flat_us), "%.1f us",
                  row.flat.decide_us_per_round);
    std::snprintf(tree_us, sizeof(tree_us), "%.1f us",
                  row.tree.decide_us_per_round);
    std::snprintf(sat, sizeof(sat), "%.3f / %.3f", row.flat.satisfaction,
                  row.tree.satisfaction);
    std::snprintf(fair, sizeof(fair), "%.3f / %.3f", row.flat.fairness,
                  row.tree.fairness);
    table.add_row({std::to_string(row.units),
                   std::to_string(row.tree.shards),
                   std::to_string(row.tree.levels), flat_us, tree_us, sat,
                   fair});
    csv.write_row({std::to_string(row.units),
                   std::to_string(row.tree.shards),
                   std::to_string(row.tree.levels),
                   format_double(row.flat.decide_us_per_round, 2),
                   format_double(row.tree.decide_us_per_round, 2),
                   format_double(row.tree.total_us_per_round, 2),
                   format_double(row.flat.satisfaction, 4),
                   format_double(row.tree.satisfaction, 4),
                   format_double(row.flat.fairness, 4),
                   format_double(row.tree.fairness, 4)});
  }
  table.print();

  {
    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n  \"bench\": \"ext_scale\",\n  \"schema_version\": 1,\n"
         << "  \"rounds\": " << rounds << ",\n  \"shard_size\": " << shard
         << ",\n  \"sizes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"units\": %d, \"shards\": %d, \"levels\": %d, "
          "\"flat_decide_us\": %.2f, \"tree_critical_us\": %.2f, "
          "\"tree_total_us\": %.2f, \"flat_sat\": %.4f, \"tree_sat\": "
          "%.4f, \"flat_fair\": %.4f, \"tree_fair\": %.4f}%s\n",
          rows[i].units, rows[i].tree.shards, rows[i].tree.levels,
          rows[i].flat.decide_us_per_round,
          rows[i].tree.decide_us_per_round, rows[i].tree.total_us_per_round,
          rows[i].flat.satisfaction, rows[i].tree.satisfaction,
          rows[i].flat.fairness, rows[i].tree.fairness,
          i + 1 < rows.size() ? "," : "");
      json << buf;
    }
    json << "  ]\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  // Quality gates. Policy quality must degrade only gracefully at every
  // size; the latency claim is asserted only when the sweep reaches the
  // scale the hierarchy exists for (timing at toy sizes is noise).
  int failures = 0;
  for (const auto& row : rows) {
    if (row.tree.satisfaction < row.flat.satisfaction - 0.05) {
      std::fprintf(stderr,
                   "FAIL: %d units — tree satisfaction %.3f vs flat %.3f "
                   "(allowed -0.05)\n",
                   row.units, row.tree.satisfaction, row.flat.satisfaction);
      ++failures;
    }
    if (row.tree.fairness < row.flat.fairness - 0.10) {
      std::fprintf(stderr,
                   "FAIL: %d units — tree fairness %.3f vs flat %.3f "
                   "(allowed -0.10)\n",
                   row.units, row.tree.fairness, row.flat.fairness);
      ++failures;
    }
  }
  const auto& top = rows.back();
  if (top.units >= 10000) {
    if (top.tree.decide_us_per_round >= top.flat.decide_us_per_round / 2.0) {
      std::fprintf(stderr,
                   "FAIL: %d units — tree critical path %.1f us not below "
                   "half the flat decide %.1f us\n",
                   top.units, top.tree.decide_us_per_round,
                   top.flat.decide_us_per_round);
      ++failures;
    } else {
      std::printf(
          "at %d units the tree critical path is %.1fx below the flat "
          "decide (%.1f vs %.1f us/round)\n",
          top.units,
          top.flat.decide_us_per_round / top.tree.decide_us_per_round,
          top.tree.decide_us_per_round, top.flat.decide_us_per_round);
    }
  }
  if (failures > 0) return 1;
  std::printf(
      "\nExpected: flat decide grows with the unit count while the tree's\n"
      "critical path stays bounded by the fan-out; satisfaction/fairness\n"
      "within the graceful-degradation envelope at every size.\n");
  return 0;
}
