/// Extension experiment: decentralized power management. The paper's
/// Related Work cites Penelope (peer-to-peer power management, ref [43]);
/// this bench runs our agent-swarm variant — every unit manages its own
/// budget slice and trades with one peer per exchange round, no central
/// coordinator — against centralized DPS and SLURM on contended pairs,
/// and sweeps the number of exchange rounds per decision period.
///
/// Expected: with a couple of exchange rounds per second the swarm lands
/// between SLURM and centralized DPS (budget diffuses in O(n/rounds)
/// periods instead of instantly), and conservation keeps the budget exact
/// without anyone ever computing a global sum.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/slurm_stateless.hpp"
#include "metrics/metrics.hpp"
#include "p2p/p2p_manager.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

double pair_gain(PowerManager& manager, const WorkloadSpec& a,
                 const WorkloadSpec& b, double base_a, double base_b,
                 int repeats) {
  Cluster cluster({GroupSpec{a, 10, 61}, GroupSpec{b, 10, 62}});
  SimulatedRapl rapl(cluster.total_units());
  EngineConfig config;
  config.total_budget = 110.0 * cluster.total_units();
  config.target_completions = repeats;
  config.max_time = 60000.0;
  const auto result = SimulationEngine(config).run(cluster, rapl, manager);
  std::vector<double> lat_a, lat_b;
  for (const auto& c : result.completions[0]) lat_a.push_back(c.latency());
  for (const auto& c : result.completions[1]) lat_b.push_back(c.latency());
  return pair_hmean(base_a / hmean_latency(lat_a),
                    base_b / hmean_latency(lat_b));
}

double solo_baseline(const WorkloadSpec& spec, std::uint64_t seed,
                     int repeats) {
  Cluster cluster({GroupSpec{spec, 10, seed}});
  SimulatedRapl rapl(10);
  EngineConfig config;
  config.total_budget = 1100.0;
  config.target_completions = repeats;
  config.max_time = 60000.0;
  ConstantManager constant;
  const auto result = SimulationEngine(config).run(cluster, rapl, constant);
  std::vector<double> latencies;
  for (const auto& c : result.completions[0]) {
    latencies.push_back(c.latency());
  }
  return hmean_latency(latencies);
}

}  // namespace

int main() {
  using namespace dps;
  const int repeats = dps::bench::params_from_env().repeats;

  const auto a = workload_by_name("Kmeans");
  const auto b = workload_by_name("GMM");
  const double base_a = solo_baseline(a, 61, repeats);
  const double base_b = solo_baseline(b, 62, repeats);

  std::printf(
      "Extension: peer-to-peer agent swarm vs centralized managers\n"
      "(Kmeans + GMM, pair hmean gain vs constant allocation).\n\n");

  CsvWriter csv(dps::bench::out_dir() + "/ext_p2p.csv");
  csv.write_header({"manager", "pair_gain"});

  Table table({"manager", "pair gain"});
  SlurmStatelessManager slurm;
  const double slurm_gain = pair_gain(slurm, a, b, base_a, base_b, repeats);
  table.add_row({"slurm (central)", dps::bench::percent(slurm_gain)});
  csv.write_row({"slurm", format_double(slurm_gain, 4)});

  for (const int rounds : {1, 2, 4, 8}) {
    for (const auto topology :
         {ExchangeTopology::kRing, ExchangeTopology::kRandomPairs}) {
      P2pManager p2p(topology, rounds);
      const double gain = pair_gain(p2p, a, b, base_a, base_b, repeats);
      const std::string label =
          std::string("p2p ") +
          (topology == ExchangeTopology::kRing ? "ring" : "random") + " x" +
          std::to_string(rounds);
      table.add_row({label, dps::bench::percent(gain)});
      csv.write_row({label, format_double(gain, 4)});
    }
  }

  DpsManager dps;
  const double dps_gain = pair_gain(dps, a, b, base_a, base_b, repeats);
  table.add_row({"dps (central)", dps::bench::percent(dps_gain)});
  csv.write_row({"dps", format_double(dps_gain, 4)});
  table.print();

  std::printf(
      "\nExpected: the swarm improves with exchange rounds and approaches\n"
      "centralized DPS, without any node ever seeing the global state.\n");
  return 0;
}
