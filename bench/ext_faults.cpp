/// Extension experiment: manager resilience under escalating fault rates.
/// The paper's evaluation only disturbs the system through clean budget
/// changes; this bench turns on the src/faults/ subsystem — node crashes,
/// wedged sensors, garbage readings, stuck RAPL actuators, facility budget
/// sags — at 0x / 0.5x / 1x / 2x of a base rate mix and co-runs Kmeans+GMM
/// under each manager against the *identical* deterministic fault plan.
///
/// Reports, per (fault level, manager): mean normalized performance (pair
/// hmean of speedups vs the fault-free constant allocation), completions
/// lost vs the manager's own fault-free twin, and the engine's resilience
/// telemetry (faulted time, watt-seconds of overshoot while faulted, mean
/// recovery time, dropped cap writes). The claim under test: a stateful
/// manager that *evicts* unresponsive units and re-admits them on recovery
/// degrades more gracefully than the stateless baseline.

#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "faults/fault_plan.hpp"
#include "faults/resilience.hpp"
#include "managers/constant.hpp"
#include "managers/slurm_stateless.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

constexpr int kUnits = 20;
constexpr Watts kBudgetPerSocket = 110.0;

/// Base fault mix, in expected events per 1000 s cluster-wide. The sweep
/// scales all five rates together.
FaultPlanConfig base_faults(std::uint64_t seed) {
  FaultPlanConfig config;
  config.seed = seed;
  config.horizon = 100000.0;
  config.crash_rate = 1.2;
  config.sensor_dropout_rate = 0.8;
  config.sensor_garbage_rate = 0.8;
  config.cap_stuck_rate = 0.8;
  config.budget_sag_rate = 0.4;
  return config;
}

std::shared_ptr<const FaultPlan> plan_at_level(double level,
                                               std::uint64_t seed) {
  if (level <= 0.0) return nullptr;
  auto config = base_faults(seed);
  config.crash_rate *= level;
  config.sensor_dropout_rate *= level;
  config.sensor_garbage_rate *= level;
  config.cap_stuck_rate *= level;
  config.budget_sag_rate *= level;
  return std::make_shared<FaultPlan>(FaultPlan::generate(config, kUnits));
}

struct Run {
  double hmean_a = 0.0;
  double hmean_b = 0.0;
  std::vector<std::size_t> completed;  // per group
  EngineResult result;
};

Run run_level(PowerManager& manager, const WorkloadSpec& a,
              const WorkloadSpec& b, double level, int repeats,
              std::uint64_t seed) {
  EngineConfig config;
  config.total_budget = kBudgetPerSocket * kUnits;
  config.target_completions = repeats;
  config.max_time = 100000.0;
  config.fault_plan = plan_at_level(level, seed);

  Run run;
  run.result = run_pair(a, b, manager, config, seed);
  std::vector<double> lat_a, lat_b;
  for (const auto& c : run.result.completions[0]) lat_a.push_back(c.latency());
  for (const auto& c : run.result.completions[1]) lat_b.push_back(c.latency());
  run.hmean_a = hmean_latency(lat_a);
  run.hmean_b = hmean_latency(lat_b);
  for (const auto& group : run.result.completions) {
    run.completed.push_back(group.size());
  }
  return run;
}

double mean_recovery(const EngineResult& result) {
  if (result.fault_recovery_times.empty()) return 0.0;
  return std::accumulate(result.fault_recovery_times.begin(),
                         result.fault_recovery_times.end(), 0.0) /
         static_cast<double>(result.fault_recovery_times.size());
}

}  // namespace

int main() {
  using namespace dps;
  const auto params = dps::bench::params_from_env();
  const int repeats = params.repeats;
  const std::uint64_t seed = params.seed;

  const auto a = workload_by_name("Kmeans");
  const auto b = workload_by_name("GMM");
  const std::vector<double> levels = {0.0, 0.5, 1.0, 2.0};

  std::printf(
      "Extension: resilience under escalating fault rates (Kmeans + GMM,\n"
      "%d sockets, %.0f W/socket budget). Fault mix at 1x: crashes 1.2,\n"
      "sensor dropout 0.8, sensor garbage 0.8, stuck caps 0.8, budget sags\n"
      "0.4 per 1000 s; all managers face the identical deterministic plan.\n\n",
      kUnits, kBudgetPerSocket);

  CsvWriter csv(dps::bench::out_dir() + "/ext_faults.csv");
  csv.write_header({"fault_level", "manager", "hmean_a", "hmean_b",
                    "mean_norm_perf", "completions_lost", "faults_injected",
                    "faulted_time_s", "faulted_overshoot_ws",
                    "mean_recovery_s", "dropped_cap_writes", "peak_cap_sum"});

  Table table({"level", "manager", "norm perf", "lost runs", "faults",
               "faulted [s]", "overshoot [Ws]", "recovery [s]"});

  struct Entry {
    const char* name;
    std::unique_ptr<PowerManager> (*make)();
    Run clean;  // the manager's own fault-free twin (completions-lost ref)
  };
  std::vector<Entry> managers;
  managers.push_back({"constant",
                      []() -> std::unique_ptr<PowerManager> {
                        return std::make_unique<ConstantManager>();
                      },
                      {}});
  managers.push_back({"slurm",
                      []() -> std::unique_ptr<PowerManager> {
                        return std::make_unique<SlurmStatelessManager>();
                      },
                      {}});
  managers.push_back({"dps",
                      []() -> std::unique_ptr<PowerManager> {
                        return std::make_unique<DpsManager>();
                      },
                      {}});

  // Every (level, manager) run — plus the fault-free constant reference —
  // faces its own deterministic fault plan and manager instance, so the
  // whole grid fans out as one sweep; the serial pass below then replays
  // the original reporting order over the collected runs.
  ConstantManager constant_baseline;
  const Run clean_constant =
      run_level(constant_baseline, a, b, 0.0, repeats, seed);
  const auto runs =
      sweep_ordered(levels.size() * managers.size(), [&](std::size_t i) {
        const double level = levels[i / managers.size()];
        auto manager = managers[i % managers.size()].make();
        return run_level(*manager, a, b, level, repeats, seed);
      });

  double dps_norm_at_faults = 0.0, slurm_norm_at_faults = 0.0;
  int faulted_levels = 0;
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const double level = levels[li];
    for (std::size_t mi = 0; mi < managers.size(); ++mi) {
      auto& entry = managers[mi];
      const Run& run = runs[li * managers.size() + mi];
      if (level <= 0.0) entry.clean = run;

      // Normalized performance of each workload vs the fault-free constant
      // allocation; their harmonic mean is the bench's headline number.
      const double norm = pair_hmean(clean_constant.hmean_a / run.hmean_a,
                                     clean_constant.hmean_b / run.hmean_b);
      const int lost = completions_lost(run.completed, entry.clean.completed);
      if (level > 0.0 && std::string(entry.name) == "dps") {
        dps_norm_at_faults += norm;
        ++faulted_levels;
      }
      if (level > 0.0 && std::string(entry.name) == "slurm") {
        slurm_norm_at_faults += norm;
      }

      table.add_row({format_double(level, 1), entry.name,
                     format_double(norm, 3), std::to_string(lost),
                     std::to_string(run.result.faults_injected),
                     format_double(run.result.faulted_time, 0),
                     format_double(run.result.faulted_overshoot_ws, 1),
                     format_double(mean_recovery(run.result), 1)});
      csv.write_row(
          {format_double(level, 2), entry.name, format_double(run.hmean_a, 2),
           format_double(run.hmean_b, 2), format_double(norm, 4),
           std::to_string(lost), std::to_string(run.result.faults_injected),
           format_double(run.result.faulted_time, 1),
           format_double(run.result.faulted_overshoot_ws, 2),
           format_double(mean_recovery(run.result), 2),
           std::to_string(run.result.dropped_cap_writes),
           format_double(run.result.peak_cap_sum, 1)});
    }
  }
  table.print();

  const double dps_mean = dps_norm_at_faults / faulted_levels;
  const double slurm_mean = slurm_norm_at_faults / faulted_levels;
  std::printf(
      "\nMean normalized performance over nonzero fault levels: dps %.3f vs\n"
      "slurm %.3f — the stateful manager must win (%s). Eviction reclaims a\n"
      "dead unit's watts for the survivors; the stateless baseline can only\n"
      "squeeze the dark unit's cap, stranding budget every decision round.\n",
      dps_mean, slurm_mean, dps_mean > slurm_mean ? "it does" : "IT DOES NOT");
  return dps_mean > slurm_mean ? 0 : 1;
}
