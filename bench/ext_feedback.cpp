/// Extension experiment (beyond the paper): how does a PShifter-style
/// proportional feedback shifter — the feedback-control family the paper's
/// Related Work positions itself against — compare with DPS and SLURM on
/// the contended workload groups?
///
/// Expected shape: feedback beats the stateless SLURM plugin (it shifts
/// slack smoothly every second) but trails DPS under contention, because
/// it reacts only to instantaneous slack: it cannot tell a unit that is
/// briefly idle from one that just entered a long low phase, and it cannot
/// anticipate a rise the way DPS's power dynamics do.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "experiments/registry.hpp"
#include "metrics/metrics.hpp"
#include "signal/rolling.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workloads/npb_suite.hpp"
#include "workloads/spark_suite.hpp"

int main() {
  using namespace dps;
  PairRunner runner(dps::bench::params_from_env());

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"Kmeans", "GMM"}, {"LDA", "EP"},  {"Linear", "GMM"}, {"LR", "CG"},
      {"Bayes", "SP"},   {"RF", "GMM"},  {"GMM", "LU"},     {"LDA", "FT"},
  };

  std::printf(
      "Extension: PShifter-style feedback shifter vs SLURM vs DPS on %zu\n"
      "contended pairs (pair hmean gain vs constant, fairness).\n\n",
      pairs.size());

  CsvWriter csv(dps::bench::out_dir() + "/ext_feedback.csv");
  csv.write_header({"pair", "manager", "pair_hmean", "fairness"});

  Table table({"pair", "slurm", "feedback", "dps", "fair slurm",
               "fair fb", "fair dps"});
  std::vector<double> slurm_gains, feedback_gains, dps_gains;

  const ManagerKind kinds[3] = {ManagerKind::kSlurm, ManagerKind::kFeedback,
                                ManagerKind::kDps};
  const auto outcomes = sweep_ordered(pairs.size() * 3, [&](std::size_t i) {
    const auto& [a_name, b_name] = pairs[i / 3];
    return runner.run_pair(workload_by_name(a_name), workload_by_name(b_name),
                           kinds[i % 3]);
  });

  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto& [a_name, b_name] = pairs[p];
    double gain[3] = {0, 0, 0}, fair[3] = {0, 0, 0};
    for (int k = 0; k < 3; ++k) {
      const auto& outcome = outcomes[p * 3 + static_cast<std::size_t>(k)];
      gain[k] = outcome.pair_hmean;
      fair[k] = outcome.fairness;
      csv.write_row({a_name + "+" + b_name, to_string(kinds[k]),
                     format_double(outcome.pair_hmean, 4),
                     format_double(outcome.fairness, 4)});
    }
    table.add_row({a_name + "+" + b_name, dps::bench::percent(gain[0]),
                   dps::bench::percent(gain[1]), dps::bench::percent(gain[2]),
                   format_double(fair[0], 3), format_double(fair[1], 3),
                   format_double(fair[2], 3)});
    slurm_gains.push_back(gain[0]);
    feedback_gains.push_back(gain[1]);
    dps_gains.push_back(gain[2]);
  }
  table.print();

  std::printf("\nmean pair gain: slurm %s, feedback %s, dps %s\n",
              dps::bench::percent(harmonic_mean(slurm_gains)).c_str(),
              dps::bench::percent(harmonic_mean(feedback_gains)).c_str(),
              dps::bench::percent(harmonic_mean(dps_gains)).c_str());
  return 0;
}
