/// Figure 4 — Spark low-utility group: every mid/high-power Spark workload
/// co-runs with every low-power Spark workload (28 pairs) under SLURM, the
/// oracle, and DPS. Reports each mid/high workload's harmonic-mean speedup
/// over the constant-allocation baseline, aggregated across its four
/// low-power partners.
///
/// Paper shapes to reproduce: demands rarely exceed the budget, so DPS and
/// the oracle land 5-8 % above constant on average; SLURM matches them
/// except on the high-frequency workloads (Linear, LR), where it can fall
/// below constant; the largest gain is GMM's.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "signal/rolling.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workloads/spark_suite.hpp"

int main() {
  using namespace dps;
  PairRunner runner(dps::bench::params_from_env());

  const auto primaries = spark_mid_high_names();
  const auto partners = spark_low_names();
  const std::vector<ManagerKind> managers = {
      ManagerKind::kSlurm, ManagerKind::kOracle, ManagerKind::kDps};

  std::printf(
      "Figure 4 reproduction: Spark low-utility group, %zu x %zu = %zu "
      "pairs,\nhmean speedup of the mid/high workload vs constant 110 W "
      "(repeats=%d).\n\n",
      primaries.size(), partners.size(), primaries.size() * partners.size(),
      runner.params().repeats);

  CsvWriter csv(dps::bench::out_dir() + "/fig4_low_utility.csv");
  csv.write_header({"primary", "partner", "manager", "primary_speedup",
                    "partner_speedup", "fairness"});

  // manager -> primary -> speedups across its low-power partners.
  std::map<std::string, std::map<std::string, std::vector<double>>> gains;
  for (const auto& primary_name : primaries) {
    const auto primary = spark_workload(primary_name);
    for (const auto& partner_name : partners) {
      const auto partner = spark_workload(partner_name);
      for (const auto kind : managers) {
        const auto outcome = runner.run_pair(primary, partner, kind);
        gains[to_string(kind)][primary_name].push_back(outcome.a.speedup);
        csv.write_row({primary_name, partner_name, to_string(kind),
                       format_double(outcome.a.speedup, 4),
                       format_double(outcome.b.speedup, 4),
                       format_double(outcome.fairness, 4)});
      }
    }
  }

  Table table({"workload", "slurm", "oracle", "dps"});
  std::map<std::string, std::vector<double>> per_manager_all;
  for (const auto& primary_name : primaries) {
    std::vector<std::string> row = {primary_name};
    for (const char* manager : {"slurm", "oracle", "dps"}) {
      const double h = harmonic_mean(gains[manager][primary_name]);
      per_manager_all[manager].push_back(h);
      row.push_back(dps::bench::percent(h));
    }
    table.add_row(row);
  }
  table.print();

  std::printf("\nmean gain: slurm %s, oracle %s, dps %s\n",
              dps::bench::percent(
                  harmonic_mean(per_manager_all["slurm"])).c_str(),
              dps::bench::percent(
                  harmonic_mean(per_manager_all["oracle"])).c_str(),
              dps::bench::percent(
                  harmonic_mean(per_manager_all["dps"])).c_str());
  const auto dps_summary = summarize(per_manager_all["dps"]);
  std::printf("dps max single-workload gain: %s (paper: +17.6%% on GMM)\n",
              dps::bench::percent(dps_summary.max).c_str());
  std::printf(
      "paper shapes: dps ~ oracle ~ +5..8%%; slurm matches except on the\n"
      "high-frequency Linear/LR where it can dip below constant.\n");
  return 0;
}
