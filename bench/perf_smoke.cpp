/// Perf-smoke harness — the repo's tracked sweep-throughput baseline.
///
/// Times one fixed fig6-style grid (3 Spark x 2 NPB workloads x
/// {slurm, dps}) twice: serially (jobs=1) and in parallel (DPS_JOBS,
/// default hardware concurrency), each from a cold PairRunner so both
/// phases pay the same solo-baseline bill. Both phases dump their CSV and
/// the harness fails if the bytes differ — the determinism contract is
/// checked on every perf run, not just in the test suite.
///
/// Results land in BENCH_sweep.json (override with DPS_BENCH_JSON), the
/// perf-trajectory artifact CI uploads on every run; see
/// docs/performance.md for how to read it. Knobs:
///   DPS_JOBS               parallel worker count (default: available CPUs)
///   DPS_REPEATS            runs per workload (default 1 here: smoke scale)
///   DPS_PERF_MIN_SPEEDUP   exit nonzero if parallel/serial speedup falls
///                          below this (default 0 = never; CI sets 1.0)
///   DPS_PERF_MIN_STEPS_PER_S  exit nonzero if the serial phase's engine
///                          steps/s falls below this absolute floor
///                          (default 0 = never; CI pins a conservative one)
///   DPS_BENCH_JSON         output path (default "BENCH_sweep.json")

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiments/registry.hpp"
#include "util/csv.hpp"

namespace {

using namespace dps;

struct Task {
  std::string a, b;
  ManagerKind kind;
};

struct Phase {
  double wall_s = 0.0;
  long total_steps = 0;
  std::string csv_path;
};

std::vector<Task> fixed_grid() {
  const std::vector<std::string> spark = {"Kmeans", "LDA", "Sort"};
  const std::vector<std::string> npb = {"EP", "CG"};
  std::vector<Task> tasks;
  for (const auto& a : spark) {
    for (const auto& b : npb) {
      for (const auto kind : {ManagerKind::kSlurm, ManagerKind::kDps}) {
        tasks.push_back({a, b, kind});
      }
    }
  }
  return tasks;
}

Phase run_phase(const std::vector<Task>& tasks, int jobs, int repeats,
                const std::string& csv_path) {
  // Cold runner per phase: both phases recompute the solo baselines, so
  // the serial/parallel comparison is apples to apples.
  ExperimentParams params = dps::bench::params_from_env();
  params.repeats = repeats;
  PairRunner runner(params);

  const auto start = std::chrono::steady_clock::now();
  const auto outcomes = sweep_ordered(
      tasks.size(),
      [&](std::size_t i) {
        return runner.run_pair(workload_by_name(tasks[i].a),
                               workload_by_name(tasks[i].b), tasks[i].kind);
      },
      jobs);

  CsvWriter csv(csv_path);
  csv.write_header({"a", "b", "manager", "pair_hmean", "fairness"});
  Phase phase;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    phase.total_steps += outcomes[i].steps;
    csv.write_row({tasks[i].a, tasks[i].b, to_string(tasks[i].kind),
                   format_double(outcomes[i].pair_hmean, 4),
                   format_double(outcomes[i].fairness, 4)});
  }
  csv.flush();
  phase.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  phase.csv_path = csv_path;
  return phase;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main() {
  using namespace dps;
  const auto tasks = fixed_grid();
  const int repeats = static_cast<int>(env_int("DPS_REPEATS", 1));
  const int jobs = sweep_jobs();
  const double min_speedup = env_double("DPS_PERF_MIN_SPEEDUP", 0.0);
  const double min_steps_per_s = env_double("DPS_PERF_MIN_STEPS_PER_S", 0.0);
  const std::string json_path =
      env_string("DPS_BENCH_JSON", "BENCH_sweep.json");
  const std::string out = dps::bench::out_dir();

  std::printf(
      "perf_smoke: fixed fig6-style grid, %zu tasks, repeats=%d, "
      "jobs=%d.\n",
      tasks.size(), repeats, jobs);

  const Phase serial =
      run_phase(tasks, 1, repeats, out + "/perf_smoke_serial.csv");
  std::printf("serial   (jobs=1):  %7.2f s, %ld engine steps, %.0f steps/s\n",
              serial.wall_s, serial.total_steps,
              serial.total_steps / serial.wall_s);

  const Phase parallel =
      run_phase(tasks, jobs, repeats, out + "/perf_smoke_parallel.csv");
  std::printf("parallel (jobs=%d): %7.2f s, %ld engine steps, %.0f steps/s\n",
              jobs, parallel.wall_s, parallel.total_steps,
              parallel.total_steps / parallel.wall_s);

  const bool identical =
      slurp(serial.csv_path) == slurp(parallel.csv_path) &&
      !slurp(serial.csv_path).empty();
  const double speedup = serial.wall_s / parallel.wall_s;
  std::printf("speedup %.2fx; CSV outputs %s\n", speedup,
              identical ? "byte-identical" : "DIFFER");

  {
    std::ofstream json(json_path, std::ios::trunc);
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"perf_smoke\",\n"
        "  \"schema_version\": 1,\n"
        "  \"grid\": \"3 spark x 2 npb x {slurm,dps}\",\n"
        "  \"tasks\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"jobs\": %d,\n"
        "  \"hardware_threads\": %u,\n"
        "  \"total_engine_steps\": %ld,\n"
        "  \"serial_wall_s\": %.3f,\n"
        "  \"parallel_wall_s\": %.3f,\n"
        "  \"serial_steps_per_s\": %.0f,\n"
        "  \"parallel_steps_per_s\": %.0f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"identical_csv\": %s\n"
        "}\n",
        tasks.size(), repeats, jobs, available_threads(),
        serial.total_steps, serial.wall_s, parallel.wall_s,
        serial.total_steps / serial.wall_s,
        parallel.total_steps / parallel.wall_s, speedup,
        identical ? "true" : "false");
    json << buf;
    if (!json) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — parallel CSV differs from serial\n");
    return 1;
  }
  if (serial.total_steps != parallel.total_steps) {
    std::fprintf(stderr, "perf_smoke: FAIL — step counts differ\n");
    return 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  const double serial_rate = serial.total_steps / serial.wall_s;
  if (min_steps_per_s > 0.0 && serial_rate < min_steps_per_s) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — serial %.0f steps/s below required "
                 "%.0f steps/s\n",
                 serial_rate, min_steps_per_s);
    return 1;
  }
  return 0;
}
