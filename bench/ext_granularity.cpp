/// Extension experiment: power-capping granularity. The paper manages at
/// socket granularity and notes (Section 3) that different machines
/// support different scales — cores, sockets, or whole nodes. Here DPS
/// manages the same 20-socket system at three granularities: per socket
/// (20 units), per dual-socket node (10 units), and per 4-socket chassis
/// (5 units); node-level caps are split across the node's sockets by the
/// firmware-style proportional divider in sim/granularity.hpp.
///
/// Expected shape: coarser units blur the per-socket dynamics (a node's
/// aggregated trace is smoother than its sockets'), so the manager's
/// fairness and gains degrade gently with granularity — and management at
/// any granularity still beats constant allocation.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/granularity.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

struct GranularityResult {
  double hmean_a = 0.0;
  double hmean_b = 0.0;
};

/// Manual engine loop with the aggregator between manager and hardware.
GranularityResult run_at_granularity(PowerManager& manager,
                                     int sockets_per_unit, int repeats) {
  Cluster cluster({GroupSpec{workload_by_name("Kmeans"), 10, 41},
                   GroupSpec{workload_by_name("GMM"), 10, 42}});
  const int sockets = cluster.total_units();
  SimulatedRapl rapl(sockets);
  UnitAggregator aggregator(sockets, sockets_per_unit);
  const int units = aggregator.num_units();

  ManagerContext ctx;
  ctx.num_units = units;
  ctx.total_budget = 110.0 * sockets;
  ctx.tdp = rapl.tdp() * sockets_per_unit;
  ctx.min_cap = rapl.min_cap() * sockets_per_unit;
  manager.reset(ctx);

  std::vector<Watts> unit_caps(units, ctx.constant_cap());
  std::vector<Watts> unit_power(units, 0.0);
  std::vector<Watts> socket_caps(sockets, 110.0);
  std::vector<Watts> socket_power(sockets, 0.0);
  std::vector<Watts> measured(sockets, 0.0);

  for (int s = 0; s < sockets; ++s) rapl.set_cap(s, socket_caps[s]);

  const Seconds max_time = 40000.0;
  while (cluster.min_completions() < repeats && cluster.now() < max_time) {
    std::vector<Watts> effective(sockets);
    for (int s = 0; s < sockets; ++s) effective[s] = rapl.effective_cap(s);
    cluster.step(1.0, effective, socket_power);
    for (int s = 0; s < sockets; ++s) rapl.record(s, socket_power[s], 1.0);
    rapl.advance_step();
    for (int s = 0; s < sockets; ++s) measured[s] = rapl.read_power(s);

    aggregator.aggregate(measured, unit_power);
    manager.decide(unit_power, unit_caps);
    aggregator.split_caps(unit_caps, measured, socket_caps);
    for (int s = 0; s < sockets; ++s) rapl.set_cap(s, socket_caps[s]);
  }

  GranularityResult result;
  std::vector<double> lat_a, lat_b;
  for (const auto& c : cluster.completions(0)) lat_a.push_back(c.latency());
  for (const auto& c : cluster.completions(1)) lat_b.push_back(c.latency());
  result.hmean_a = hmean_latency(lat_a);
  result.hmean_b = hmean_latency(lat_b);
  return result;
}

}  // namespace

int main() {
  using namespace dps;
  const int repeats = dps::bench::params_from_env().repeats;

  std::printf(
      "Extension: capping granularity — DPS managing 20 sockets as 20 / 10 "
      "/ 5 units\n(Kmeans + GMM; gains vs constant allocation at the same "
      "granularity).\n\n");

  // Task 0 is the constant baseline, tasks 1..3 the DPS runs at socket /
  // node / chassis granularity. Each task owns a private manager, so the
  // sweep is task-pure and the CSV is byte-identical at any DPS_JOBS.
  const std::vector<int> spus = {1, 2, 4};
  const auto results = sweep_ordered(spus.size() + 1, [&](std::size_t i) {
    if (i == 0) {
      ConstantManager constant;
      return run_at_granularity(constant, 1, repeats);
    }
    DpsManager dps;
    return run_at_granularity(dps, spus[i - 1], repeats);
  });
  const GranularityResult& base = results[0];

  CsvWriter csv(dps::bench::out_dir() + "/ext_granularity.csv");
  csv.write_header({"sockets_per_unit", "units", "pair_gain"});

  Table table({"granularity", "units", "Kmeans gain", "GMM gain",
               "pair gain"});
  for (std::size_t i = 0; i < spus.size(); ++i) {
    const int spu = spus[i];
    const GranularityResult& result = results[i + 1];
    const double gain_a = base.hmean_a / result.hmean_a;
    const double gain_b = base.hmean_b / result.hmean_b;
    const double pair = pair_hmean(gain_a, gain_b);
    table.add_row({spu == 1 ? "socket" : (spu == 2 ? "node" : "chassis"),
                   std::to_string(20 / spu), dps::bench::percent(gain_a),
                   dps::bench::percent(gain_b), dps::bench::percent(pair)});
    csv.write_row({std::to_string(spu), std::to_string(20 / spu),
                   format_double(pair, 4)});
  }
  table.print();

  std::printf(
      "\nExpected: positive gains at every granularity, degrading gently as\n"
      "units coarsen (aggregation smooths away the per-socket dynamics DPS\n"
      "feeds on).\n");
  return 0;
}
