/// Table 4 — NAS Parallel Benchmark characterization: mean latency under
/// the constant 110 W/socket allocation, next to the paper's numbers, plus
/// the measured share of time above 110 W (all NPB workloads are above 99 %
/// in the paper).

#include <cstdio>

#include "bench_common.hpp"
#include "managers/constant.hpp"
#include "sim/engine.hpp"
#include "workloads/npb_suite.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace dps;

double measured_fraction_above(const WorkloadSpec& spec, Watts threshold) {
  Cluster cluster({GroupSpec{spec, 10, 23}});
  SimulatedRapl rapl(cluster.total_units());
  EngineConfig config;
  config.total_budget = 165.0 * cluster.total_units();
  config.target_completions = 1;
  config.record_trace = true;
  config.max_time = 4.0 * (spec.nominal_duration() + spec.inter_run_gap);
  ConstantManager constant;
  const auto result = SimulationEngine(config).run(cluster, rapl, constant);
  const auto series = result.trace->true_power_of(0);
  int above = 0, active = 0;
  for (const double p : series) {
    if (p > kIdlePower + 2.0) ++active;
    if (p > threshold) ++above;
  }
  return active > 0 ? static_cast<double>(above) / active : 0.0;
}

}  // namespace

int main() {
  using namespace dps;
  PairRunner runner(dps::bench::params_from_env());

  std::printf(
      "Table 4 reproduction: NPB workloads under constant 110 W caps.\n\n");

  Table table({"workload", "duration [s]", "(paper [s])", "above 110W",
               "(paper)"});
  CsvWriter csv(dps::bench::out_dir() + "/table4_npb.csv");
  csv.write_header(
      {"workload", "duration_s", "paper_duration_s", "above_110_frac"});

  const auto suite = npb_suite();
  struct Row {
    double duration = 0.0;
    double above = 0.0;
  };
  const auto rows = sweep_ordered(suite.size(), [&](std::size_t i) {
    return Row{runner.baseline_hmean(suite[i]),
               measured_fraction_above(suite[i], 110.0)};
  });

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& spec = suite[i];
    const auto paper = npb_paper_stats(spec.name);
    table.add_row({spec.name, format_double(rows[i].duration, 1),
                   format_double(paper.duration, 1),
                   format_double(rows[i].above * 100.0, 1) + "%",
                   format_double(paper.above_110_fraction * 100.0, 1) + "%"});
    csv.write_row({spec.name, format_double(rows[i].duration, 2),
                   format_double(paper.duration, 2),
                   format_double(rows[i].above, 4)});
  }
  table.print();
  std::printf("\nAll NPB workloads draw high power essentially all the time\n"
              "(>99%% above 110 W in the paper), unlike the phased Spark "
              "workloads.\n");
  return 0;
}
