/// Engine-step microbench — the tracked single-thread steps/s baseline.
///
/// perf_smoke rates *sweep* throughput through the PairRunner (solo
/// baselines included); this bench rates the simulation engine itself.
/// Everything runs serially on one thread. Three scenarios:
///
///   pair20    the perf_smoke grid's 6 fig6-style pairs (20 units each),
///             run directly through run_pair under constant, slurm and
///             dps — the manager split shows where a step's time goes
///             (constant = physics + RAPL only; slurm adds the stateless
///             decide; dps adds the Kalman/priority/readjust pipeline).
///   units1k   a synthetic 1000-unit square-wave fleet under DPS for a
///             fixed number of rounds.
///   units10k  the same at 10000 units — the structure-of-arrays layout's
///             home turf, where per-unit pointer chasing would dominate.
///
/// Results land in BENCH_steps.json (override with DPS_BENCH_JSON); the
/// headline "serial_steps_per_s" is the dps pair20 rate, which CI gates
/// with DPS_PERF_MIN_STEPS_PER_S. Knobs:
///   DPS_REPEATS              completed runs per workload in pair20 [1]
///   DPS_STEPS_ROUNDS         engine steps per synthetic scenario  [300]
///   DPS_PERF_MIN_STEPS_PER_S exit nonzero if the dps pair20 rate falls
///                            below this (default 0 = never)
///   DPS_BENCH_JSON           output path (default "BENCH_steps.json")

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/slurm_stateless.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace dps;

struct Scenario {
  std::string name;
  std::string manager;
  int units = 0;
  long engine_steps = 0;
  long unit_steps = 0;
  double wall_s = 0.0;

  double steps_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(engine_steps) / wall_s : 0.0;
  }
  double unit_steps_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(unit_steps) / wall_s : 0.0;
  }
};

std::unique_ptr<PowerManager> manager_by_name(const std::string& name) {
  if (name == "constant") return std::make_unique<ConstantManager>();
  if (name == "slurm") {
    return std::make_unique<SlurmStatelessManager>(slurm_plugin_defaults());
  }
  return std::make_unique<DpsManager>();
}

/// Same generous stop bound the PairRunner uses.
Seconds time_bound(const WorkloadSpec& a, const WorkloadSpec& b,
                   int repeats) {
  const Seconds longer =
      std::max(a.nominal_duration() + a.inter_run_gap,
               b.nominal_duration() + b.inter_run_gap);
  return 200.0 + 4.0 * longer * repeats;
}

/// The 6 pairs of the perf_smoke grid under one manager, timed end to end.
Scenario run_pair20(const std::string& manager_name, int repeats,
                    std::uint64_t seed) {
  const std::vector<std::string> spark = {"Kmeans", "LDA", "Sort"};
  const std::vector<std::string> npb = {"EP", "CG"};
  const PerfModel model;

  Scenario s;
  s.name = "pair20";
  s.manager = manager_name;
  s.units = 20;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& a_name : spark) {
    for (const auto& b_name : npb) {
      const WorkloadSpec a = workload_by_name(a_name);
      const WorkloadSpec b = workload_by_name(b_name);
      EngineConfig config;
      config.dt = 1.0;
      config.total_budget = 110.0 * 20;
      config.target_completions = repeats;
      config.max_time = time_bound(a, b, repeats);
      const auto manager = manager_by_name(manager_name);
      const auto result = run_pair(a, b, *manager, config, seed, model);
      s.engine_steps += result.steps;
      s.unit_steps += static_cast<long>(result.steps) * s.units;
    }
  }
  s.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return s;
}

/// A fixed number of engine rounds over a synthetic square-wave fleet:
/// groups of 20 sockets with per-group period/levels, half the fleet
/// phasing above the fair share — the overprovisioned mix DPS feeds on.
Scenario run_synthetic(const std::string& name, int units, int rounds,
                       std::uint64_t seed) {
  std::vector<GroupSpec> groups;
  const int sockets_per_group = 20;
  const int num_groups = units / sockets_per_group;
  groups.reserve(static_cast<std::size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) {
    // Long-running shapes so no group completes inside the measured
    // window: the engine always executes exactly `rounds` steps.
    const Watts high = 120.0 + 10.0 * (g % 5);
    const Watts low = 50.0 + 5.0 * (g % 7);
    const Seconds high_for = 20.0 + 2.0 * (g % 9);
    const Seconds low_for = 15.0 + 3.0 * (g % 4);
    groups.push_back(GroupSpec{
        square_wave(high_for, low_for, high, low, /*cycles=*/4000),
        sockets_per_group, seed + static_cast<std::uint64_t>(g)});
  }
  Cluster cluster(std::move(groups));

  RaplSimConfig rapl_config;
  rapl_config.noise_seed = seed * 977 + 13;
  SimulatedRapl rapl(cluster.total_units(), rapl_config);

  EngineConfig config;
  config.dt = 1.0;
  config.total_budget = 110.0 * units;
  config.target_completions = 1;  // unreachable inside the window
  config.max_time = static_cast<Seconds>(rounds);

  DpsManager manager;
  Scenario s;
  s.name = name;
  s.manager = "dps";
  s.units = units;
  const auto start = std::chrono::steady_clock::now();
  const auto result = SimulationEngine(config).run(cluster, rapl, manager);
  s.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  s.engine_steps = result.steps;
  s.unit_steps = static_cast<long>(result.steps) * units;
  return s;
}

}  // namespace

int main() {
  using namespace dps;
  const int repeats = static_cast<int>(env_int("DPS_REPEATS", 1));
  const int rounds = static_cast<int>(env_int("DPS_STEPS_ROUNDS", 300));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(env_int("DPS_SEED", 42));
  const double min_steps =
      env_double("DPS_PERF_MIN_STEPS_PER_S", 0.0);
  const std::string json_path =
      env_string("DPS_BENCH_JSON", "BENCH_steps.json");

  std::printf(
      "perf_steps: single-thread engine microbench, repeats=%d, "
      "synthetic rounds=%d.\n\n",
      repeats, rounds);

  std::vector<Scenario> scenarios;
  for (const std::string manager : {"constant", "slurm", "dps"}) {
    scenarios.push_back(run_pair20(manager, repeats, seed));
  }
  scenarios.push_back(run_synthetic("units1k", 1000, rounds, seed));
  scenarios.push_back(run_synthetic("units10k", 10000, rounds, seed));

  CsvWriter csv(dps::bench::out_dir() + "/perf_steps.csv");
  csv.write_header({"scenario", "manager", "units", "engine_steps", "wall_s",
                    "steps_per_s", "unit_steps_per_s"});
  for (const auto& s : scenarios) {
    std::printf("%-9s %-9s %6d units: %8ld steps in %6.2f s = %9.0f "
                "steps/s (%.2fM unit-steps/s)\n",
                s.name.c_str(), s.manager.c_str(), s.units, s.engine_steps,
                s.wall_s, s.steps_per_s(), s.unit_steps_per_s() / 1e6);
    csv.write_row({s.name, s.manager, std::to_string(s.units),
                   std::to_string(s.engine_steps), format_double(s.wall_s, 3),
                   format_double(s.steps_per_s(), 0),
                   format_double(s.unit_steps_per_s(), 0)});
  }
  csv.flush();

  // Headline: the dps pair20 rate — the configuration both the golden
  // experiments and perf_smoke spend their time in.
  double headline = 0.0;
  for (const auto& s : scenarios) {
    if (s.name == "pair20" && s.manager == "dps") headline = s.steps_per_s();
  }

  {
    std::ofstream json(json_path, std::ios::trunc);
    json << "{\n  \"bench\": \"perf_steps\",\n  \"schema_version\": 1,\n"
         << "  \"repeats\": " << repeats << ",\n  \"rounds\": " << rounds
         << ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const auto& s = scenarios[i];
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"manager\": \"%s\", \"units\": "
                    "%d, \"engine_steps\": %ld, \"wall_s\": %.3f, "
                    "\"steps_per_s\": %.0f, \"unit_steps_per_s\": %.0f}%s\n",
                    s.name.c_str(), s.manager.c_str(), s.units,
                    s.engine_steps, s.wall_s, s.steps_per_s(),
                    s.unit_steps_per_s(),
                    i + 1 < scenarios.size() ? "," : "");
      json << buf;
    }
    char tail[128];
    std::snprintf(tail, sizeof(tail),
                  "  ],\n  \"serial_steps_per_s\": %.0f\n}\n", headline);
    json << tail;
    if (!json) {
      std::fprintf(stderr, "perf_steps: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (min_steps > 0.0 && headline < min_steps) {
    std::fprintf(stderr,
                 "perf_steps: FAIL — %.0f steps/s below required %.0f\n",
                 headline, min_steps);
    return 1;
  }
  return 0;
}
