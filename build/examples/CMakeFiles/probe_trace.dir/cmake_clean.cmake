file(REMOVE_RECURSE
  "CMakeFiles/probe_trace.dir/probe_trace.cpp.o"
  "CMakeFiles/probe_trace.dir/probe_trace.cpp.o.d"
  "probe_trace"
  "probe_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
