# Empty compiler generated dependencies file for probe_trace.
# This may be replaced when dependencies are built.
