file(REMOVE_RECURSE
  "CMakeFiles/probe_priority.dir/probe_priority.cpp.o"
  "CMakeFiles/probe_priority.dir/probe_priority.cpp.o.d"
  "probe_priority"
  "probe_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
