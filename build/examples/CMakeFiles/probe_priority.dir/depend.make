# Empty dependencies file for probe_priority.
# This may be replaced when dependencies are built.
