# Empty dependencies file for ext_power_emergency.
# This may be replaced when dependencies are built.
