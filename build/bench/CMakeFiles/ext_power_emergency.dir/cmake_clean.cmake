file(REMOVE_RECURSE
  "CMakeFiles/ext_power_emergency.dir/ext_power_emergency.cpp.o"
  "CMakeFiles/ext_power_emergency.dir/ext_power_emergency.cpp.o.d"
  "ext_power_emergency"
  "ext_power_emergency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_power_emergency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
