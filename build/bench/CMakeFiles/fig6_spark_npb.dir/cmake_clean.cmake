file(REMOVE_RECURSE
  "CMakeFiles/fig6_spark_npb.dir/fig6_spark_npb.cpp.o"
  "CMakeFiles/fig6_spark_npb.dir/fig6_spark_npb.cpp.o.d"
  "fig6_spark_npb"
  "fig6_spark_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spark_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
