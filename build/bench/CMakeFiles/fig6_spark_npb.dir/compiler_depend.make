# Empty compiler generated dependencies file for fig6_spark_npb.
# This may be replaced when dependencies are built.
