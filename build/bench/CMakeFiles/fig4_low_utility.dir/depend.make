# Empty dependencies file for fig4_low_utility.
# This may be replaced when dependencies are built.
