file(REMOVE_RECURSE
  "CMakeFiles/fig4_low_utility.dir/fig4_low_utility.cpp.o"
  "CMakeFiles/fig4_low_utility.dir/fig4_low_utility.cpp.o.d"
  "fig4_low_utility"
  "fig4_low_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_low_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
