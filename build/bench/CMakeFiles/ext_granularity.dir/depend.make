# Empty dependencies file for ext_granularity.
# This may be replaced when dependencies are built.
