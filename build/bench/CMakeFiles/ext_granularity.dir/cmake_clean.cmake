file(REMOVE_RECURSE
  "CMakeFiles/ext_granularity.dir/ext_granularity.cpp.o"
  "CMakeFiles/ext_granularity.dir/ext_granularity.cpp.o.d"
  "ext_granularity"
  "ext_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
