# Empty dependencies file for ext_p2p.
# This may be replaced when dependencies are built.
