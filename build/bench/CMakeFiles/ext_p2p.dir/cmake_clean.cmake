file(REMOVE_RECURSE
  "CMakeFiles/ext_p2p.dir/ext_p2p.cpp.o"
  "CMakeFiles/ext_p2p.dir/ext_p2p.cpp.o.d"
  "ext_p2p"
  "ext_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
