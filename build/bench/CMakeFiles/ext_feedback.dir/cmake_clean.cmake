file(REMOVE_RECURSE
  "CMakeFiles/ext_feedback.dir/ext_feedback.cpp.o"
  "CMakeFiles/ext_feedback.dir/ext_feedback.cpp.o.d"
  "ext_feedback"
  "ext_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
