# Empty compiler generated dependencies file for ext_budget_sweep.
# This may be replaced when dependencies are built.
