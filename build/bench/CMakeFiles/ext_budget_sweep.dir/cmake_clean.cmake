file(REMOVE_RECURSE
  "CMakeFiles/ext_budget_sweep.dir/ext_budget_sweep.cpp.o"
  "CMakeFiles/ext_budget_sweep.dir/ext_budget_sweep.cpp.o.d"
  "ext_budget_sweep"
  "ext_budget_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
