# Empty dependencies file for fig5_high_utility.
# This may be replaced when dependencies are built.
