file(REMOVE_RECURSE
  "CMakeFiles/fig5_high_utility.dir/fig5_high_utility.cpp.o"
  "CMakeFiles/fig5_high_utility.dir/fig5_high_utility.cpp.o.d"
  "fig5_high_utility"
  "fig5_high_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_high_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
