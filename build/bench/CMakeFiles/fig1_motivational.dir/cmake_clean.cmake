file(REMOVE_RECURSE
  "CMakeFiles/fig1_motivational.dir/fig1_motivational.cpp.o"
  "CMakeFiles/fig1_motivational.dir/fig1_motivational.cpp.o.d"
  "fig1_motivational"
  "fig1_motivational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_motivational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
