# Empty compiler generated dependencies file for ext_job_mix.
# This may be replaced when dependencies are built.
