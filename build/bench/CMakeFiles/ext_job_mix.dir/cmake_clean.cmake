file(REMOVE_RECURSE
  "CMakeFiles/ext_job_mix.dir/ext_job_mix.cpp.o"
  "CMakeFiles/ext_job_mix.dir/ext_job_mix.cpp.o.d"
  "ext_job_mix"
  "ext_job_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_job_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
