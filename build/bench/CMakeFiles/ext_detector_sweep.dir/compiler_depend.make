# Empty compiler generated dependencies file for ext_detector_sweep.
# This may be replaced when dependencies are built.
