file(REMOVE_RECURSE
  "CMakeFiles/ext_detector_sweep.dir/ext_detector_sweep.cpp.o"
  "CMakeFiles/ext_detector_sweep.dir/ext_detector_sweep.cpp.o.d"
  "ext_detector_sweep"
  "ext_detector_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_detector_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
