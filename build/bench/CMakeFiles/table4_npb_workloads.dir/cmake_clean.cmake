file(REMOVE_RECURSE
  "CMakeFiles/table4_npb_workloads.dir/table4_npb_workloads.cpp.o"
  "CMakeFiles/table4_npb_workloads.dir/table4_npb_workloads.cpp.o.d"
  "table4_npb_workloads"
  "table4_npb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_npb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
