# Empty dependencies file for table4_npb_workloads.
# This may be replaced when dependencies are built.
