# Empty compiler generated dependencies file for fig7_fairness.
# This may be replaced when dependencies are built.
