file(REMOVE_RECURSE
  "CMakeFiles/fig7_fairness.dir/fig7_fairness.cpp.o"
  "CMakeFiles/fig7_fairness.dir/fig7_fairness.cpp.o.d"
  "fig7_fairness"
  "fig7_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
