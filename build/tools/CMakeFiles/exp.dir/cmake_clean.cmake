file(REMOVE_RECURSE
  "CMakeFiles/exp.dir/exp.cpp.o"
  "CMakeFiles/exp.dir/exp.cpp.o.d"
  "exp"
  "exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
