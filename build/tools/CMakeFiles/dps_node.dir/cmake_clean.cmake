file(REMOVE_RECURSE
  "CMakeFiles/dps_node.dir/dps_node.cpp.o"
  "CMakeFiles/dps_node.dir/dps_node.cpp.o.d"
  "dps_node"
  "dps_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
