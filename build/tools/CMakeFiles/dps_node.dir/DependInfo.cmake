
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dps_node.cpp" "tools/CMakeFiles/dps_node.dir/dps_node.cpp.o" "gcc" "tools/CMakeFiles/dps_node.dir/dps_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dps_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
