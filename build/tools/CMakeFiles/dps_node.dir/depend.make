# Empty dependencies file for dps_node.
# This may be replaced when dependencies are built.
