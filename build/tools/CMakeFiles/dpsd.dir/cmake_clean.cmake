file(REMOVE_RECURSE
  "CMakeFiles/dpsd.dir/dpsd.cpp.o"
  "CMakeFiles/dpsd.dir/dpsd.cpp.o.d"
  "dpsd"
  "dpsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
