# Empty compiler generated dependencies file for dpsd.
# This may be replaced when dependencies are built.
