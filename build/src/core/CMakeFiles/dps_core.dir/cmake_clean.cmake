file(REMOVE_RECURSE
  "CMakeFiles/dps_core.dir/cap_readjuster.cpp.o"
  "CMakeFiles/dps_core.dir/cap_readjuster.cpp.o.d"
  "CMakeFiles/dps_core.dir/config_io.cpp.o"
  "CMakeFiles/dps_core.dir/config_io.cpp.o.d"
  "CMakeFiles/dps_core.dir/dps_manager.cpp.o"
  "CMakeFiles/dps_core.dir/dps_manager.cpp.o.d"
  "CMakeFiles/dps_core.dir/history.cpp.o"
  "CMakeFiles/dps_core.dir/history.cpp.o.d"
  "CMakeFiles/dps_core.dir/priority_module.cpp.o"
  "CMakeFiles/dps_core.dir/priority_module.cpp.o.d"
  "libdps_core.a"
  "libdps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
