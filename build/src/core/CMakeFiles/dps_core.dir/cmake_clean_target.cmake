file(REMOVE_RECURSE
  "libdps_core.a"
)
