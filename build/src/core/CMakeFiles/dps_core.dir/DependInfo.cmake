
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cap_readjuster.cpp" "src/core/CMakeFiles/dps_core.dir/cap_readjuster.cpp.o" "gcc" "src/core/CMakeFiles/dps_core.dir/cap_readjuster.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/dps_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/dps_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/dps_manager.cpp" "src/core/CMakeFiles/dps_core.dir/dps_manager.cpp.o" "gcc" "src/core/CMakeFiles/dps_core.dir/dps_manager.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/dps_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/dps_core.dir/history.cpp.o.d"
  "/root/repo/src/core/priority_module.cpp" "src/core/CMakeFiles/dps_core.dir/priority_module.cpp.o" "gcc" "src/core/CMakeFiles/dps_core.dir/priority_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/dps_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/managers/CMakeFiles/dps_managers.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dps_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
