# Empty compiler generated dependencies file for dps_core.
# This may be replaced when dependencies are built.
