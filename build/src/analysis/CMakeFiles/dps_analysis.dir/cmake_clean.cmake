file(REMOVE_RECURSE
  "CMakeFiles/dps_analysis.dir/trace_analysis.cpp.o"
  "CMakeFiles/dps_analysis.dir/trace_analysis.cpp.o.d"
  "libdps_analysis.a"
  "libdps_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
