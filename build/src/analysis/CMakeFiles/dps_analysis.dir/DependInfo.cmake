
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/trace_analysis.cpp" "src/analysis/CMakeFiles/dps_analysis.dir/trace_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/dps_analysis.dir/trace_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/dps_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dps_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dps_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
