# Empty dependencies file for dps_analysis.
# This may be replaced when dependencies are built.
