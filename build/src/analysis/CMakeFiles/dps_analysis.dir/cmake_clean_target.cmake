file(REMOVE_RECURSE
  "libdps_analysis.a"
)
