file(REMOVE_RECURSE
  "CMakeFiles/dps_signal.dir/kalman.cpp.o"
  "CMakeFiles/dps_signal.dir/kalman.cpp.o.d"
  "CMakeFiles/dps_signal.dir/peaks.cpp.o"
  "CMakeFiles/dps_signal.dir/peaks.cpp.o.d"
  "CMakeFiles/dps_signal.dir/phase_stats.cpp.o"
  "CMakeFiles/dps_signal.dir/phase_stats.cpp.o.d"
  "CMakeFiles/dps_signal.dir/rolling.cpp.o"
  "CMakeFiles/dps_signal.dir/rolling.cpp.o.d"
  "libdps_signal.a"
  "libdps_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
