# Empty compiler generated dependencies file for dps_signal.
# This may be replaced when dependencies are built.
