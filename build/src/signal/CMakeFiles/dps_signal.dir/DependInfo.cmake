
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/kalman.cpp" "src/signal/CMakeFiles/dps_signal.dir/kalman.cpp.o" "gcc" "src/signal/CMakeFiles/dps_signal.dir/kalman.cpp.o.d"
  "/root/repo/src/signal/peaks.cpp" "src/signal/CMakeFiles/dps_signal.dir/peaks.cpp.o" "gcc" "src/signal/CMakeFiles/dps_signal.dir/peaks.cpp.o.d"
  "/root/repo/src/signal/phase_stats.cpp" "src/signal/CMakeFiles/dps_signal.dir/phase_stats.cpp.o" "gcc" "src/signal/CMakeFiles/dps_signal.dir/phase_stats.cpp.o.d"
  "/root/repo/src/signal/rolling.cpp" "src/signal/CMakeFiles/dps_signal.dir/rolling.cpp.o" "gcc" "src/signal/CMakeFiles/dps_signal.dir/rolling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
