file(REMOVE_RECURSE
  "libdps_signal.a"
)
