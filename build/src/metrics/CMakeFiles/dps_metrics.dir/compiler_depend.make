# Empty compiler generated dependencies file for dps_metrics.
# This may be replaced when dependencies are built.
