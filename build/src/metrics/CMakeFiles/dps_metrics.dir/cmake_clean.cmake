file(REMOVE_RECURSE
  "CMakeFiles/dps_metrics.dir/metrics.cpp.o"
  "CMakeFiles/dps_metrics.dir/metrics.cpp.o.d"
  "libdps_metrics.a"
  "libdps_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
