file(REMOVE_RECURSE
  "libdps_metrics.a"
)
