# Empty dependencies file for dps_util.
# This may be replaced when dependencies are built.
