file(REMOVE_RECURSE
  "CMakeFiles/dps_util.dir/csv.cpp.o"
  "CMakeFiles/dps_util.dir/csv.cpp.o.d"
  "CMakeFiles/dps_util.dir/csv_reader.cpp.o"
  "CMakeFiles/dps_util.dir/csv_reader.cpp.o.d"
  "CMakeFiles/dps_util.dir/env.cpp.o"
  "CMakeFiles/dps_util.dir/env.cpp.o.d"
  "CMakeFiles/dps_util.dir/ini.cpp.o"
  "CMakeFiles/dps_util.dir/ini.cpp.o.d"
  "CMakeFiles/dps_util.dir/rng.cpp.o"
  "CMakeFiles/dps_util.dir/rng.cpp.o.d"
  "CMakeFiles/dps_util.dir/table.cpp.o"
  "CMakeFiles/dps_util.dir/table.cpp.o.d"
  "libdps_util.a"
  "libdps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
