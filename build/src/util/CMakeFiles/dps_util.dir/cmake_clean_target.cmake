file(REMOVE_RECURSE
  "libdps_util.a"
)
