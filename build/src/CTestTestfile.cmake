# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("signal")
subdirs("power")
subdirs("workloads")
subdirs("sim")
subdirs("managers")
subdirs("core")
subdirs("metrics")
subdirs("net")
subdirs("p2p")
subdirs("analysis")
subdirs("experiments")
