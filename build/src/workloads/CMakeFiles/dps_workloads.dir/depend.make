# Empty dependencies file for dps_workloads.
# This may be replaced when dependencies are built.
