
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/instance.cpp" "src/workloads/CMakeFiles/dps_workloads.dir/instance.cpp.o" "gcc" "src/workloads/CMakeFiles/dps_workloads.dir/instance.cpp.o.d"
  "/root/repo/src/workloads/npb_suite.cpp" "src/workloads/CMakeFiles/dps_workloads.dir/npb_suite.cpp.o" "gcc" "src/workloads/CMakeFiles/dps_workloads.dir/npb_suite.cpp.o.d"
  "/root/repo/src/workloads/spark_suite.cpp" "src/workloads/CMakeFiles/dps_workloads.dir/spark_suite.cpp.o" "gcc" "src/workloads/CMakeFiles/dps_workloads.dir/spark_suite.cpp.o.d"
  "/root/repo/src/workloads/spec.cpp" "src/workloads/CMakeFiles/dps_workloads.dir/spec.cpp.o" "gcc" "src/workloads/CMakeFiles/dps_workloads.dir/spec.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/dps_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/dps_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/trace_workload.cpp" "src/workloads/CMakeFiles/dps_workloads.dir/trace_workload.cpp.o" "gcc" "src/workloads/CMakeFiles/dps_workloads.dir/trace_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dps_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
