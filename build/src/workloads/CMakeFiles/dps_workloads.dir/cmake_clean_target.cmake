file(REMOVE_RECURSE
  "libdps_workloads.a"
)
