file(REMOVE_RECURSE
  "CMakeFiles/dps_workloads.dir/instance.cpp.o"
  "CMakeFiles/dps_workloads.dir/instance.cpp.o.d"
  "CMakeFiles/dps_workloads.dir/npb_suite.cpp.o"
  "CMakeFiles/dps_workloads.dir/npb_suite.cpp.o.d"
  "CMakeFiles/dps_workloads.dir/spark_suite.cpp.o"
  "CMakeFiles/dps_workloads.dir/spark_suite.cpp.o.d"
  "CMakeFiles/dps_workloads.dir/spec.cpp.o"
  "CMakeFiles/dps_workloads.dir/spec.cpp.o.d"
  "CMakeFiles/dps_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/dps_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/dps_workloads.dir/trace_workload.cpp.o"
  "CMakeFiles/dps_workloads.dir/trace_workload.cpp.o.d"
  "libdps_workloads.a"
  "libdps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
