# Empty compiler generated dependencies file for dps_power.
# This may be replaced when dependencies are built.
