file(REMOVE_RECURSE
  "libdps_power.a"
)
