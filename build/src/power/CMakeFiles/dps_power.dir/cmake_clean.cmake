file(REMOVE_RECURSE
  "CMakeFiles/dps_power.dir/rapl_sim.cpp.o"
  "CMakeFiles/dps_power.dir/rapl_sim.cpp.o.d"
  "CMakeFiles/dps_power.dir/rapl_sysfs.cpp.o"
  "CMakeFiles/dps_power.dir/rapl_sysfs.cpp.o.d"
  "libdps_power.a"
  "libdps_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
