file(REMOVE_RECURSE
  "CMakeFiles/dps_net.dir/client.cpp.o"
  "CMakeFiles/dps_net.dir/client.cpp.o.d"
  "CMakeFiles/dps_net.dir/protocol.cpp.o"
  "CMakeFiles/dps_net.dir/protocol.cpp.o.d"
  "CMakeFiles/dps_net.dir/server.cpp.o"
  "CMakeFiles/dps_net.dir/server.cpp.o.d"
  "libdps_net.a"
  "libdps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
