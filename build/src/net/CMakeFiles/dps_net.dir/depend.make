# Empty dependencies file for dps_net.
# This may be replaced when dependencies are built.
