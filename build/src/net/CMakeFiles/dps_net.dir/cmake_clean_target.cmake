file(REMOVE_RECURSE
  "libdps_net.a"
)
