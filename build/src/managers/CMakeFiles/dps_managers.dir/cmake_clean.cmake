file(REMOVE_RECURSE
  "CMakeFiles/dps_managers.dir/constant.cpp.o"
  "CMakeFiles/dps_managers.dir/constant.cpp.o.d"
  "CMakeFiles/dps_managers.dir/feedback.cpp.o"
  "CMakeFiles/dps_managers.dir/feedback.cpp.o.d"
  "CMakeFiles/dps_managers.dir/hierarchical.cpp.o"
  "CMakeFiles/dps_managers.dir/hierarchical.cpp.o.d"
  "CMakeFiles/dps_managers.dir/manager.cpp.o"
  "CMakeFiles/dps_managers.dir/manager.cpp.o.d"
  "CMakeFiles/dps_managers.dir/mimd.cpp.o"
  "CMakeFiles/dps_managers.dir/mimd.cpp.o.d"
  "CMakeFiles/dps_managers.dir/oracle.cpp.o"
  "CMakeFiles/dps_managers.dir/oracle.cpp.o.d"
  "CMakeFiles/dps_managers.dir/slurm_stateless.cpp.o"
  "CMakeFiles/dps_managers.dir/slurm_stateless.cpp.o.d"
  "libdps_managers.a"
  "libdps_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
