
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/managers/constant.cpp" "src/managers/CMakeFiles/dps_managers.dir/constant.cpp.o" "gcc" "src/managers/CMakeFiles/dps_managers.dir/constant.cpp.o.d"
  "/root/repo/src/managers/feedback.cpp" "src/managers/CMakeFiles/dps_managers.dir/feedback.cpp.o" "gcc" "src/managers/CMakeFiles/dps_managers.dir/feedback.cpp.o.d"
  "/root/repo/src/managers/hierarchical.cpp" "src/managers/CMakeFiles/dps_managers.dir/hierarchical.cpp.o" "gcc" "src/managers/CMakeFiles/dps_managers.dir/hierarchical.cpp.o.d"
  "/root/repo/src/managers/manager.cpp" "src/managers/CMakeFiles/dps_managers.dir/manager.cpp.o" "gcc" "src/managers/CMakeFiles/dps_managers.dir/manager.cpp.o.d"
  "/root/repo/src/managers/mimd.cpp" "src/managers/CMakeFiles/dps_managers.dir/mimd.cpp.o" "gcc" "src/managers/CMakeFiles/dps_managers.dir/mimd.cpp.o.d"
  "/root/repo/src/managers/oracle.cpp" "src/managers/CMakeFiles/dps_managers.dir/oracle.cpp.o" "gcc" "src/managers/CMakeFiles/dps_managers.dir/oracle.cpp.o.d"
  "/root/repo/src/managers/slurm_stateless.cpp" "src/managers/CMakeFiles/dps_managers.dir/slurm_stateless.cpp.o" "gcc" "src/managers/CMakeFiles/dps_managers.dir/slurm_stateless.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/dps_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
