# Empty dependencies file for dps_managers.
# This may be replaced when dependencies are built.
