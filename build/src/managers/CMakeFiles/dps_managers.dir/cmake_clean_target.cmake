file(REMOVE_RECURSE
  "libdps_managers.a"
)
