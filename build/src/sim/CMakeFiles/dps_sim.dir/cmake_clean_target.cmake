file(REMOVE_RECURSE
  "libdps_sim.a"
)
