
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/dps_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/dps_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/dps_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/dps_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/granularity.cpp" "src/sim/CMakeFiles/dps_sim.dir/granularity.cpp.o" "gcc" "src/sim/CMakeFiles/dps_sim.dir/granularity.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/dps_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/dps_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/dps_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/dps_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/managers/CMakeFiles/dps_managers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/dps_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
