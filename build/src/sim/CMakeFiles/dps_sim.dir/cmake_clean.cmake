file(REMOVE_RECURSE
  "CMakeFiles/dps_sim.dir/cluster.cpp.o"
  "CMakeFiles/dps_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/dps_sim.dir/engine.cpp.o"
  "CMakeFiles/dps_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dps_sim.dir/granularity.cpp.o"
  "CMakeFiles/dps_sim.dir/granularity.cpp.o.d"
  "CMakeFiles/dps_sim.dir/perf_model.cpp.o"
  "CMakeFiles/dps_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/dps_sim.dir/trace.cpp.o"
  "CMakeFiles/dps_sim.dir/trace.cpp.o.d"
  "libdps_sim.a"
  "libdps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
