# Empty compiler generated dependencies file for dps_sim.
# This may be replaced when dependencies are built.
