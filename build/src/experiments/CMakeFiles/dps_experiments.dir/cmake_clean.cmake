file(REMOVE_RECURSE
  "CMakeFiles/dps_experiments.dir/pair_runner.cpp.o"
  "CMakeFiles/dps_experiments.dir/pair_runner.cpp.o.d"
  "CMakeFiles/dps_experiments.dir/registry.cpp.o"
  "CMakeFiles/dps_experiments.dir/registry.cpp.o.d"
  "libdps_experiments.a"
  "libdps_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
