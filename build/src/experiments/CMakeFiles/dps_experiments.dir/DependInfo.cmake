
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiments/pair_runner.cpp" "src/experiments/CMakeFiles/dps_experiments.dir/pair_runner.cpp.o" "gcc" "src/experiments/CMakeFiles/dps_experiments.dir/pair_runner.cpp.o.d"
  "/root/repo/src/experiments/registry.cpp" "src/experiments/CMakeFiles/dps_experiments.dir/registry.cpp.o" "gcc" "src/experiments/CMakeFiles/dps_experiments.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/dps_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/managers/CMakeFiles/dps_managers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dps_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
