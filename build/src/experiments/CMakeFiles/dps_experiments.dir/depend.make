# Empty dependencies file for dps_experiments.
# This may be replaced when dependencies are built.
