file(REMOVE_RECURSE
  "libdps_experiments.a"
)
