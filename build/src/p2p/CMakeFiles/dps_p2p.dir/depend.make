# Empty dependencies file for dps_p2p.
# This may be replaced when dependencies are built.
