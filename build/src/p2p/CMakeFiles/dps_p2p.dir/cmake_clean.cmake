file(REMOVE_RECURSE
  "CMakeFiles/dps_p2p.dir/agent.cpp.o"
  "CMakeFiles/dps_p2p.dir/agent.cpp.o.d"
  "CMakeFiles/dps_p2p.dir/exchange.cpp.o"
  "CMakeFiles/dps_p2p.dir/exchange.cpp.o.d"
  "CMakeFiles/dps_p2p.dir/p2p_manager.cpp.o"
  "CMakeFiles/dps_p2p.dir/p2p_manager.cpp.o.d"
  "libdps_p2p.a"
  "libdps_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
