file(REMOVE_RECURSE
  "libdps_p2p.a"
)
