file(REMOVE_RECURSE
  "CMakeFiles/mimd_window_test.dir/mimd_window_test.cpp.o"
  "CMakeFiles/mimd_window_test.dir/mimd_window_test.cpp.o.d"
  "mimd_window_test"
  "mimd_window_test.pdb"
  "mimd_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimd_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
