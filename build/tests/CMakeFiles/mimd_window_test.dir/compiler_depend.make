# Empty compiler generated dependencies file for mimd_window_test.
# This may be replaced when dependencies are built.
