file(REMOVE_RECURSE
  "CMakeFiles/rapl_sysfs_test.dir/rapl_sysfs_test.cpp.o"
  "CMakeFiles/rapl_sysfs_test.dir/rapl_sysfs_test.cpp.o.d"
  "rapl_sysfs_test"
  "rapl_sysfs_test.pdb"
  "rapl_sysfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapl_sysfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
