file(REMOVE_RECURSE
  "CMakeFiles/phase_stats_test.dir/phase_stats_test.cpp.o"
  "CMakeFiles/phase_stats_test.dir/phase_stats_test.cpp.o.d"
  "phase_stats_test"
  "phase_stats_test.pdb"
  "phase_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
