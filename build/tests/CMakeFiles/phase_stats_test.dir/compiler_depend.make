# Empty compiler generated dependencies file for phase_stats_test.
# This may be replaced when dependencies are built.
