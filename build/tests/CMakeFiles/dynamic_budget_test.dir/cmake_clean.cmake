file(REMOVE_RECURSE
  "CMakeFiles/dynamic_budget_test.dir/dynamic_budget_test.cpp.o"
  "CMakeFiles/dynamic_budget_test.dir/dynamic_budget_test.cpp.o.d"
  "dynamic_budget_test"
  "dynamic_budget_test.pdb"
  "dynamic_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
