# Empty dependencies file for dynamic_budget_test.
# This may be replaced when dependencies are built.
