# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/rapl_sysfs_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/trace_workload_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/managers_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_budget_test[1]_include.cmake")
include("/root/repo/build/tests/granularity_test[1]_include.cmake")
include("/root/repo/build/tests/phase_stats_test[1]_include.cmake")
include("/root/repo/build/tests/p2p_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchical_test[1]_include.cmake")
include("/root/repo/build/tests/mimd_window_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
add_test(daemon_smoke "sh" "/root/repo/tests/daemon_smoke_test.sh" "/root/repo/build")
set_tests_properties(daemon_smoke PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
