/// Record & replay: the workflow a practitioner uses to evaluate DPS
/// against their own applications without giving DPS control of anything.
///
///   1. RECORD  — run the application uncapped and log its power at 1 Hz
///                (here: simulate Bayes uncapped; on hardware you would
///                poll SysfsRapl and write the same two-column CSV);
///   2. REPLAY  — turn the recorded trace into a workload model
///                (workload_from_trace_csv) and co-run it against another
///                workload under every manager in the simulator;
///   3. DECIDE  — compare the speedups/fairness before touching production.

#include <cstdio>
#include <string>

#include "experiments/pair_runner.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "sim/engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workloads/trace_workload.hpp"

int main(int argc, char** argv) {
  using namespace dps;
  const std::string recorded_name = argc > 1 ? argv[1] : "Bayes";
  const std::string partner_name = argc > 2 ? argv[2] : "CG";
  const std::string csv_path = "recorded_" + recorded_name + ".csv";

  // --- 1. RECORD: uncapped solo run, one socket logged at 1 Hz. ---
  std::printf("[1/3] recording an uncapped run of %s -> %s\n",
              recorded_name.c_str(), csv_path.c_str());
  {
    Cluster cluster({GroupSpec{workload_by_name(recorded_name), 10, 81}});
    SimulatedRapl rapl(cluster.total_units());
    EngineConfig config;
    config.total_budget = 165.0 * cluster.total_units();  // never binds
    config.target_completions = 1;
    config.record_trace = true;
    config.max_time = 20000.0;
    ConstantManager constant;
    const auto result =
        SimulationEngine(config).run(cluster, rapl, constant);

    CsvWriter csv(csv_path);
    csv.write_header({"time_s", "power_w"});
    for (const auto& sample : result.trace->series(0)) {
      csv.write_row({format_double(sample.time, 0),
                     format_double(sample.true_power, 2)});
    }
  }

  // --- 2. REPLAY: the CSV becomes a first-class workload. ---
  const auto replayed = workload_from_trace_csv(csv_path, recorded_name);
  std::printf(
      "[2/3] replayed workload: %.0f s nominal, %.1f%% above 110 W, "
      "classified %s\n",
      replayed.nominal_duration(),
      100.0 * replayed.fraction_above(110.0),
      to_string(replayed.power_type));

  // --- 3. DECIDE: co-run it against the partner under every manager. ---
  std::printf("[3/3] co-running with %s under all managers\n\n",
              partner_name.c_str());
  ExperimentParams params;
  params.repeats = 2;
  PairRunner runner(params);
  const auto partner = workload_by_name(partner_name);

  Table table({"manager", recorded_name + " speedup",
               partner_name + " speedup", "pair hmean", "fairness"});
  for (const auto kind : {ManagerKind::kConstant, ManagerKind::kSlurm,
                          ManagerKind::kDps}) {
    const auto outcome = runner.run_pair(replayed, partner, kind);
    table.add_row({to_string(kind), format_double(outcome.a.speedup, 3),
                   format_double(outcome.b.speedup, 3),
                   format_double(outcome.pair_hmean, 3),
                   format_double(outcome.fairness, 3)});
  }
  table.print();
  std::printf("\n(recorded trace kept at %s; feed any real 1 Hz power log\n"
              "through the same pipeline)\n", csv_path.c_str());
  return 0;
}
