/// Live control-plane demo: the deployment shape of Section 4.3 on one
/// machine. A central DPS server accepts one TCP connection per simulated
/// socket (3-byte messages each way, as in the paper's overhead analysis);
/// each client thread owns one socket of the simulated cluster, reports
/// its noisy RAPL reading every round, and applies the cap it receives.
///
/// Two 4-socket clusters run a phased workload against a sustained one, so
/// the printout shows DPS shifting budget between them in real time.
///
/// Usage: live_controller [rounds]   (default 240; one round per second of
/// simulated time, executed as fast as the loop runs)

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dps_manager.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "power/rapl_sim.hpp"
#include "sim/cluster.hpp"
#include "workloads/npb_suite.hpp"
#include "workloads/spark_suite.hpp"

int main(int argc, char** argv) {
  using namespace dps;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 240;
  constexpr int kSocketsPerCluster = 4;
  constexpr int kUnits = 2 * kSocketsPerCluster;

  // The simulated hardware. A mutex serializes cluster stepping: client
  // threads only read/apply their own unit's state, the stepping happens
  // on the server thread between rounds.
  Cluster cluster({GroupSpec{spark_workload("Bayes"), kSocketsPerCluster, 3},
                   GroupSpec{npb_workload("CG"), kSocketsPerCluster, 4}});
  SimulatedRapl rapl(kUnits);
  std::mutex sim_mutex;
  std::vector<Watts> true_power(kUnits, 0.0);

  ControlServer server(0, kUnits);
  std::printf("DPS control server listening on 127.0.0.1:%u, %d units\n",
              server.port(), kUnits);

  std::vector<std::thread> clients;
  clients.reserve(kUnits);
  for (int u = 0; u < kUnits; ++u) {
    clients.emplace_back([&, u] {
      NodeClient client(
          [&, u]() -> Watts {
            std::lock_guard lock(sim_mutex);
            return rapl.read_power(u);
          },
          [&, u](Watts cap) {
            std::lock_guard lock(sim_mutex);
            rapl.set_cap(u, cap);
          });
      client.connect(server.port());
      client.run();
    });
  }
  server.accept_all();

  ManagerContext ctx;
  ctx.num_units = kUnits;
  ctx.total_budget = 110.0 * kUnits;
  ctx.tdp = rapl.tdp();
  ctx.min_cap = rapl.min_cap();
  DpsManager dps;

  // Drive rounds one at a time so the simulation can advance between them;
  // begin_session resets DPS once, run_round preserves its power history.
  std::uint64_t total_decide_ns = 0;
  server.begin_session(dps, ctx);
  for (int round = 0; round < rounds; ++round) {
    {
      std::lock_guard lock(sim_mutex);
      std::vector<Watts> effective(kUnits);
      for (int u = 0; u < kUnits; ++u) effective[u] = rapl.effective_cap(u);
      cluster.step(1.0, effective, true_power);
      for (int u = 0; u < kUnits; ++u) rapl.record(u, true_power[u], 1.0);
      rapl.advance_step();
    }
    total_decide_ns += server.run_round(dps);

    if (round % 30 == 0) {
      std::lock_guard lock(sim_mutex);
      double cluster_a = 0.0, cluster_b = 0.0;
      for (int u = 0; u < kSocketsPerCluster; ++u) {
        cluster_a += server.last_caps()[u];
        cluster_b += server.last_caps()[u + kSocketsPerCluster];
      }
      std::printf(
          "t=%4d s | Bayes cluster caps %6.1f W | CG cluster caps %6.1f W | "
          "runs %zu/%zu\n",
          round, cluster_a, cluster_b, cluster.completions(0).size(),
          cluster.completions(1).size());
    }
  }

  server.shutdown();
  for (auto& t : clients) t.join();
  std::printf(
      "\n%d rounds over real TCP; controller spent %.1f us/round deciding\n"
      "(each round exchanges %d bytes total — 3 per request per unit).\n",
      rounds, 1e-3 * static_cast<double>(total_decide_ns) / rounds,
      kUnits * 2 * 3);
  return 0;
}
