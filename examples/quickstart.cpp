/// Quickstart: the smallest end-to-end use of the DPS library.
///
/// Builds the paper's standard two-cluster overprovisioned system (10
/// sockets per cluster, 165 W TDP, 110 W/socket cluster-wide budget), runs
/// the same workload pair under all four power managers, and prints each
/// manager's latency, speedup over constant allocation, and fairness.
///
/// Usage: quickstart [workloadA] [workloadB]   (default: Kmeans GMM)

#include <cstdio>
#include <string>

#include "experiments/pair_runner.hpp"
#include "experiments/registry.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dps;

  const std::string name_a = argc > 1 ? argv[1] : "Kmeans";
  const std::string name_b = argc > 2 ? argv[2] : "GMM";
  const auto workload_a = workload_by_name(name_a);
  const auto workload_b = workload_by_name(name_b);

  ExperimentParams params;
  params.repeats = 2;
  PairRunner runner(params);

  std::printf("Co-running %s and %s on two 10-socket clusters, "
              "%.0f W/socket budget (TDP %.0f W)\n\n",
              name_a.c_str(), name_b.c_str(), params.budget_per_socket,
              165.0);

  Table table({"manager", name_a + " hmean [s]", name_b + " hmean [s]",
               name_a + " speedup", name_b + " speedup", "pair hmean",
               "fairness"});
  for (const ManagerKind kind :
       {ManagerKind::kConstant, ManagerKind::kSlurm, ManagerKind::kOracle,
        ManagerKind::kDps}) {
    const auto outcome = runner.run_pair(workload_a, workload_b, kind);
    table.add_row({to_string(kind), format_double(outcome.a.hmean_latency, 1),
                   format_double(outcome.b.hmean_latency, 1),
                   format_double(outcome.a.speedup, 3),
                   format_double(outcome.b.speedup, 3),
                   format_double(outcome.pair_hmean, 3),
                   format_double(outcome.fairness, 3)});
  }
  table.print();

  std::printf(
      "\nspeedup > 1 beats the constant allocation; fairness of 1 means both\n"
      "clusters received equal shares of their power demands (paper Eq. 2).\n");
  return 0;
}
