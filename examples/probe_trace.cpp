// Developer probe: trace a pair run and summarize where a workload's units
// spend time starved (demand above 110 while cap well below 110).
#include <cstdio>
#include <string>

#include "core/dps_manager.hpp"
#include "managers/slurm_stateless.hpp"
#include "sim/engine.hpp"
#include "experiments/registry.hpp"

int main(int argc, char** argv) {
  using namespace dps;
  const std::string name_a = argc > 1 ? argv[1] : "LDA";
  const std::string name_b = argc > 2 ? argv[2] : "EP";
  const std::string mgr = argc > 3 ? argv[3] : "dps";

  EngineConfig config;
  config.target_completions = 1;
  config.record_trace = true;
  config.max_time = 40000;

  DpsManager dps_mgr;
  SlurmStatelessManager slurm_mgr;
  PowerManager& manager =
      mgr == "dps" ? static_cast<PowerManager&>(dps_mgr) : slurm_mgr;

  const auto result = run_pair(workload_by_name(name_a),
                               workload_by_name(name_b), manager, config);
  std::printf("elapsed %.0f s, runs A=%zu B=%zu\n", result.elapsed,
              result.completions[0].size(), result.completions[1].size());

  // Unit 0 belongs to group A. Bucketize.
  const auto& ts = result.trace->series(0);
  double starved = 0, high_demand = 0;
  for (const auto& s : ts) {
    if (s.demand > 110.0) {
      high_demand += 1;
      if (s.cap < 104.0) starved += 1;
    }
  }
  std::printf("unit0(%s): %d samples, demand>110: %.0f, of those cap<104: %.0f (%.1f%%)\n",
              name_a.c_str(), (int)ts.size(), high_demand, starved,
              100.0 * starved / std::max(1.0, high_demand));
  // Print a fixed window (env-free: args 4,5 give [from,to)).
  const double from = argc > 4 ? std::atof(argv[4]) : 180.0;
  const double to = argc > 5 ? std::atof(argv[5]) : 240.0;
  for (const auto& s : ts) {
    if (s.time >= from && s.time < to) {
      std::printf("t=%6.0f demand=%6.1f power=%6.1f measured=%6.1f cap=%6.1f\n",
                  s.time, s.demand, s.true_power, s.measured_power, s.cap);
    }
  }
  return 0;
}
