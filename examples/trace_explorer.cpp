/// Trace explorer: co-runs any two workloads under any manager, dumps the
/// full per-socket telemetry (true power, measured power, cap, demand) to
/// CSV, and prints an ASCII timeline of one socket per cluster — the
/// quickest way to *see* a manager's behaviour (e.g. SLURM starving a
/// phased workload vs DPS equalizing).
///
/// Usage: trace_explorer [workloadA] [workloadB] [manager] [csv_path]
///   workloads: any Table 2 / Table 4 name        (default: LDA EP)
///   manager:   constant | slurm | oracle | dps   (default: dps)

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/dps_manager.hpp"
#include "experiments/registry.hpp"
#include "managers/constant.hpp"
#include "managers/oracle.hpp"
#include "managers/slurm_stateless.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dps;

/// One character per bucket: power rendered as a 0-9 level of the TDP.
std::string sparkline(const std::vector<TraceSample>& series,
                      double value_of(const TraceSample&), int buckets) {
  std::string line;
  if (series.empty()) return line;
  const std::size_t per_bucket =
      std::max<std::size_t>(1, series.size() / static_cast<std::size_t>(buckets));
  for (std::size_t i = 0; i < series.size(); i += per_bucket) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t j = i; j < std::min(series.size(), i + per_bucket); ++j) {
      sum += value_of(series[j]);
      ++count;
    }
    const double mean = sum / static_cast<double>(count);
    const int level =
        std::clamp(static_cast<int>(mean / 165.0 * 9.0), 0, 9);
    line += static_cast<char>('0' + level);
  }
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dps;
  const std::string name_a = argc > 1 ? argv[1] : "LDA";
  const std::string name_b = argc > 2 ? argv[2] : "EP";
  const std::string manager_name = argc > 3 ? argv[3] : "dps";
  const std::string csv_path =
      argc > 4 ? argv[4] : "trace_" + name_a + "_" + name_b + ".csv";

  EngineConfig config;
  config.target_completions = 1;
  config.record_trace = true;
  config.max_time = 30000.0;

  const auto workload_a = workload_by_name(name_a);
  const auto workload_b = workload_by_name(name_b);

  // The oracle needs the cluster before the engine runs; build manually.
  Cluster cluster({GroupSpec{workload_a, 10, 11},
                   GroupSpec{workload_b, 10, 12}});
  SimulatedRapl rapl(cluster.total_units());

  ConstantManager constant;
  SlurmStatelessManager slurm;
  OracleManager oracle(
      [&cluster](std::span<Watts> out) { cluster.true_demands(out); });
  DpsManager dps;
  PowerManager* manager = &dps;
  if (manager_name == "constant") manager = &constant;
  if (manager_name == "slurm") manager = &slurm;
  if (manager_name == "oracle") manager = &oracle;

  const auto result = SimulationEngine(config).run(cluster, rapl, *manager);
  result.trace->write_csv(csv_path);

  std::printf("%s + %s under %s: %.0f s simulated, runs %zu/%zu\n\n",
              name_a.c_str(), name_b.c_str(), manager->name().data(),
              result.elapsed, result.completions[0].size(),
              result.completions[1].size());

  const auto demand = [](const TraceSample& s) { return s.demand; };
  const auto power = [](const TraceSample& s) { return s.true_power; };
  const auto cap = [](const TraceSample& s) { return s.cap; };
  std::printf("socket 0 (%s):\n  demand %s\n  power  %s\n  cap    %s\n\n",
              name_a.c_str(),
              sparkline(result.trace->series(0), demand, 72).c_str(),
              sparkline(result.trace->series(0), power, 72).c_str(),
              sparkline(result.trace->series(0), cap, 72).c_str());
  std::printf("socket 10 (%s):\n  demand %s\n  power  %s\n  cap    %s\n\n",
              name_b.c_str(),
              sparkline(result.trace->series(10), demand, 72).c_str(),
              sparkline(result.trace->series(10), power, 72).c_str(),
              sparkline(result.trace->series(10), cap, 72).c_str());
  std::printf("(each char is a time bucket; 0-9 scales 0-165 W)\n"
              "full telemetry written to %s\n", csv_path.c_str());
  return 0;
}
