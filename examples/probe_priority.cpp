// Developer probe: manual engine loop printing DPS priority internals for
// one unit of each group.
#include <cstdio>
#include <string>
#include <vector>

#include "core/dps_manager.hpp"
#include "managers/slurm_stateless.hpp"
#include "experiments/registry.hpp"
#include "power/rapl_sim.hpp"
#include "sim/cluster.hpp"

int main(int argc, char** argv) {
  using namespace dps;
  const std::string name_a = argc > 1 ? argv[1] : "LDA";
  const std::string name_b = argc > 2 ? argv[2] : "EP";
  const double from = argc > 3 ? std::atof(argv[3]) : 150.0;
  const double to = argc > 4 ? std::atof(argv[4]) : 260.0;

  std::vector<GroupSpec> groups;
  groups.push_back(GroupSpec{workload_by_name(name_a), 10, 1});
  groups.push_back(GroupSpec{workload_by_name(name_b), 10, 2});
  Cluster cluster(std::move(groups));
  const int n = cluster.total_units();
  SimulatedRapl rapl(n);

  ManagerContext ctx;
  ctx.num_units = n;
  ctx.total_budget = 110.0 * n;
  ctx.dt = 1.0;
  DpsManager dps;
  SlurmStatelessManager slurm;
  const bool use_slurm = argc > 5 && std::string(argv[5]) == "slurm";
  PowerManager& mgr = use_slurm ? static_cast<PowerManager&>(slurm) : dps;
  mgr.reset(ctx);

  std::vector<Watts> caps(n, 110.0), measured(n), truep(n);
  for (int u = 0; u < n; ++u) rapl.set_cap(u, caps[u]);

  for (int step = 0; step < (int)to; ++step) {
    std::vector<Watts> eff(n);
    for (int u = 0; u < n; ++u) eff[u] = rapl.effective_cap(u);
    cluster.step(1.0, eff, truep);
    for (int u = 0; u < n; ++u) rapl.record(u, truep[u], 1.0);
    rapl.advance_step();
    for (int u = 0; u < n; ++u) measured[u] = rapl.read_power(u);
    mgr.decide(measured, caps);
    for (int u = 0; u < n; ++u) rapl.set_cap(u, caps[u]);

    if (cluster.now() >= from) {
      int high_a = 0, high_b = 0;
      double capsum_a = 0, capsum_b = 0;
      for (int u = 0; u < 10; ++u) {
        high_a += use_slurm ? 0 : dps.priorities().high_priority(u);
        capsum_a += caps[u];
      }
      for (int u = 10; u < 20; ++u) {
        high_b += use_slurm ? 0 : dps.priorities().high_priority(u);
        capsum_b += caps[u];
      }
      std::printf(
          "t=%5.0f | A u0: pwr=%5.1f cap=%5.1f pri=%d hf=%d | highA=%d "
          "capA=%4.0f | B u10: pwr=%5.1f cap=%5.1f pri=%d | highB=%d "
          "capB=%4.0f | restored=%d\n",
          cluster.now(), measured[0], caps[0],
          use_slurm ? 0 : (int)dps.priorities().high_priority(0),
          use_slurm ? 0 : (int)dps.priorities().high_frequency(0), high_a, capsum_a,
          measured[10], caps[10], use_slurm ? 0 : (int)dps.priorities().high_priority(10),
          high_b, capsum_b, use_slurm ? 0 : (int)dps.last_step_restored());
    }
  }
  return 0;
}
